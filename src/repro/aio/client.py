"""Asyncio client for the network query protocol.

:class:`AsyncQueryClient` speaks the JSON-lines protocol of
:mod:`repro.aio.protocol` to a :class:`~repro.aio.server.MaxRSServer`.  The
connection is **pipelined**: every request gets a monotonically increasing
``id`` and a future; a background reader task matches responses (which may
arrive out of order -- the server executes requests concurrently) back to
their futures.  Many coroutines can therefore share one client and one
socket, and identical concurrent queries still coalesce server-side.

Remote failures are re-raised as their local :mod:`repro.errors` types, so::

    try:
        result = await client.query(ds, QuerySpec.maxrs(w, h))
    except ServiceOverloadError:
        await backoff_and_retry()

works identically against a remote engine and an in-process one.

Pass a :class:`~repro.obs.Tracer` (or a recorder spec) to :meth:`connect`
and every operation opens a ``client.<op>`` span whose trace id rides the
request's ``trace`` field, so the server's ``server.request`` span -- and
everything under it, down to the plane sweep and blob I/O -- joins the
client's trace.  Without a tracer, calls made under an ambient span (e.g.
inside ``with tracer.trace(...)``) still propagate that span's trace id.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import obs
from repro.errors import ServiceError
from repro.geometry import WeightedPoint
from repro.service.engine import QueryResult, QuerySpec
from repro.aio import protocol

__all__ = ["AsyncQueryClient"]


class AsyncQueryClient:
    """One pipelined JSON-lines connection to a MaxRS query server.

    Use :meth:`connect` (or the async context manager form) rather than the
    constructor::

        async with await AsyncQueryClient.connect(host, port) as client:
            dataset = await client.register(points, name="city")
            result = await client.query(dataset, QuerySpec.maxrs(w, h))
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 tracer: Union[None, str, obs.Tracer,
                               obs.TraceRecorder] = None,
                 client_id: Optional[str] = None) -> None:
        self._reader = reader
        self._writer = writer
        if tracer is None or isinstance(tracer, obs.Tracer):
            self.tracer = tracer
        else:
            self.tracer = obs.Tracer(obs.resolve_recorder(tracer))
        #: Stamped into every query/query_batch request for the server's
        #: per-client accounting (``stats()["clients"]``); None = anonymous.
        self.client_id = client_id
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      tracer: Union[None, str, obs.Tracer,
                                    obs.TraceRecorder] = None,
                      client_id: Optional[str] = None
                      ) -> "AsyncQueryClient":
        """Open a connection to a running server.

        ``tracer`` enables client-side tracing: a :class:`~repro.obs.Tracer`,
        a :class:`~repro.obs.TraceRecorder`, or a recorder spec such as
        ``"ring"`` (see :func:`repro.obs.resolve_recorder`).

        ``client_id`` names this client to the server's per-client
        accounting: every query it issues is attributed to that id in the
        engine's cumulative ledgers.  Servers predating the field ignore it.
        """
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tracer=tracer, client_id=client_id)

    # ------------------------------------------------------------------ #
    # Wire plumbing
    # ------------------------------------------------------------------ #
    async def _read_responses(self) -> None:
        """Match incoming responses (any order) to their pending futures."""
        failure: Optional[BaseException] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break  # server closed the connection
                response = protocol.decode_line(line.strip())
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue  # unsolicited or abandoned; drop it
                if response.get("ok"):
                    future.set_result(response)
                else:
                    future.set_exception(
                        protocol.exception_from_wire(response))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            failure = exc
        finally:
            # Whatever ended the stream, nothing further will arrive: fail
            # every still-pending request instead of hanging its caller.
            error = ServiceError(
                "connection to the query server was lost"
                + (f": {failure}" if failure is not None else ""))
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError("the client is closed")
        if self._reader_task.done():
            raise ServiceError("connection to the query server was lost")
        op = str(message.get("op"))
        # With a tracer: each call is (at least) a root client.<op> span.
        # Without one: join any ambient trace so a caller's tracer.trace()
        # block still covers the wire hop.  Both are no-ops when nothing is
        # being traced, and the trace id rides the request's ``trace`` field.
        if self.tracer is not None:
            scope = self.tracer.trace(f"client.{op}")
        else:
            scope = obs.span(f"client.{op}")
        with scope:
            trace_id = obs.current_trace_id()
            if trace_id is not None:
                message["trace"] = trace_id
            request_id = next(self._ids)
            message["id"] = request_id
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            try:
                async with self._write_lock:
                    self._writer.write(protocol.encode_line(message))
                    await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.pop(request_id, None)
                raise ServiceError(
                    f"could not reach the query server: {exc}") from exc
            try:
                return await future
            finally:
                self._pending.pop(request_id, None)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    async def ping(self) -> bool:
        """Round-trip liveness probe."""
        response = await self._call({"op": "ping"})
        return bool(response.get("pong"))

    async def register(self, objects: Sequence[WeightedPoint], *,
                       name: Optional[str] = None,
                       replace: bool = False) -> str:
        """Register a dataset on the server; returns its dataset id."""
        response = await self._call({
            "op": "register",
            "points": protocol.points_to_wire(objects),
            "name": name,
            "replace": replace,
        })
        return response["dataset"]

    async def unregister(self, dataset: str, *,
                         keep_snapshot: bool = False) -> None:
        """Unregister a dataset on the server."""
        await self._call({"op": "unregister", "dataset": dataset,
                          "keep_snapshot": keep_snapshot})

    async def query(self, dataset: str, spec: QuerySpec) -> QueryResult:
        """Answer one query remotely; the decoded result is bit-identical
        to the engine's in-process answer (its ``cost`` ledger rides along
        but is excluded from equality)."""
        message: Dict[str, Any] = {
            "op": "query", "dataset": dataset,
            "spec": protocol.spec_to_wire(spec),
        }
        if self.client_id is not None:
            message["client_id"] = self.client_id
        response = await self._call(message)
        return protocol.result_from_wire(response["result"])

    async def query_batch(self, dataset: str,
                          specs: Sequence[QuerySpec]) -> List[QueryResult]:
        """Answer many queries in one request; results align with ``specs``."""
        message: Dict[str, Any] = {
            "op": "query_batch", "dataset": dataset,
            "specs": [protocol.spec_to_wire(spec) for spec in specs],
        }
        if self.client_id is not None:
            message["client_id"] = self.client_id
        response = await self._call(message)
        return [protocol.result_from_wire(wire)
                for wire in response["results"]]

    async def explain(self, dataset: str, spec: QuerySpec) -> Dict[str, Any]:
        """The plan the server would take for ``spec`` -- without running it.

        Returns the engine's :meth:`~repro.service.engine.MaxRSEngine.
        explain` dict (path, cache membership, probe/prune estimates,
        pyramid level survival, shard layout, backend choice).  Explaining
        never sweeps and never mutates server state.
        """
        response = await self._call({
            "op": "explain", "dataset": dataset,
            "spec": protocol.spec_to_wire(spec),
        })
        return response["plan"]

    async def trace_profile(self, trace_id: Optional[str] = None
                            ) -> Dict[str, Any]:
        """Per-stage self-time profile of the server's retained traces.

        ``trace_id`` narrows the fold to one trace's server-side roots;
        ``None`` profiles everything the server's recorder retained.
        """
        message: Dict[str, Any] = {"op": "trace_profile"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        response = await self._call(message)
        return response["profile"]

    async def stats(self) -> Dict[str, Any]:
        """The server engine's ``stats()`` tree (JSON-sanitized)."""
        response = await self._call({"op": "stats"})
        return response["stats"]

    async def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Fetch the server-retained traces with ``trace_id``.

        Returns a list of trace dictionaries (see ``Trace.to_dict``), oldest
        first -- empty when the server has never seen the id or its tracer
        does not retain traces (e.g. the default :class:`~repro.obs.
        NullRecorder`).  Rebuild rich objects with ``Trace.from_dict``.
        """
        response = await self._call({"op": "trace", "trace_id": trace_id})
        return response["traces"]

    async def metrics_text(self) -> str:
        """The server engine's metrics in Prometheus text exposition form."""
        response = await self._call({"op": "metrics_text"})
        return response["text"]

    async def healthz(self) -> Dict[str, Any]:
        """The server's liveness verdict: ``{"ok", "status", "checks"}``.

        Unlike :meth:`ping` (which only proves the socket and event loop),
        this reports what the engine knows about itself -- a degraded
        executor, dead shard workers, firing SLO alerts.
        """
        response = await self._call({"op": "healthz"})
        return response["health"]

    async def readyz(self) -> Dict[str, Any]:
        """The server's readiness verdict: ``{"ready", "status", "checks"}``
        -- the signal a load balancer should route on."""
        response = await self._call({"op": "readyz"})
        return response["health"]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def close(self) -> None:
        """Say goodbye (best effort), stop the reader, close the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            # Polite close: the server drains this connection's pipeline and
            # acknowledges before the socket goes down.
            request_id = next(self._ids)
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            async with self._write_lock:
                self._writer.write(protocol.encode_line(
                    {"op": "close", "id": request_id}))
                await self._writer.drain()
            await asyncio.wait_for(future, timeout=5.0)
        except (ServiceError, ConnectionError, OSError, asyncio.TimeoutError):
            pass  # the connection is going away regardless
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

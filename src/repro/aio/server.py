"""Asyncio TCP server: one resident engine serving many network clients.

:class:`MaxRSServer` speaks the JSON-lines protocol of
:mod:`repro.aio.protocol` over plain TCP.  Each connection may pipeline
requests: every line is dispatched as its own task, responses carry the
request's ``id`` and are written under a per-connection lock, so a slow solve
never blocks a cheap ``stats`` probe queued behind it on the same socket --
and identical queries from *different* sockets coalesce inside the
:class:`~repro.aio.engine.AsyncMaxRSEngine` front-end.

Shutdown is graceful: :meth:`MaxRSServer.stop` stops accepting, lets every
in-flight request finish (draining the engine), then closes the sockets --
the same drain-first discipline as ``AsyncMaxRSEngine.close``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Set

from repro.errors import ReproError, SerializationError
from repro.aio.engine import AsyncMaxRSEngine
from repro.aio import protocol

__all__ = ["MaxRSServer", "serve"]

#: Refuse absurd single lines instead of buffering them (64 MiB allows
#: ~1.3M-point register requests; raise per server if you need more).
DEFAULT_LINE_LIMIT = 64 * 1024 * 1024


class MaxRSServer:
    """A TCP JSON-lines front door for an :class:`AsyncMaxRSEngine`.

    Parameters
    ----------
    engine:
        The async engine to serve.  A bare :class:`~repro.service.engine.
        MaxRSEngine` is accepted too and wrapped with default admission
        settings; pass an :class:`AsyncMaxRSEngine` to control
        ``max_inflight`` / ``max_queue`` / ``overflow``.
    host, port:
        Listen address; ``port=0`` (default) lets the OS pick -- read
        :attr:`port` after :meth:`start` for the bound one.
    """

    def __init__(self, engine, *, host: str = "127.0.0.1", port: int = 0,
                 line_limit: int = DEFAULT_LINE_LIMIT) -> None:
        if isinstance(engine, AsyncMaxRSEngine):
            self.engine = engine
            self._owns_engine = False
        else:
            self.engine = AsyncMaxRSEngine(engine)
            self._owns_engine = True
        self.host = host
        self.port = port
        self._line_limit = line_limit
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "MaxRSServer":
        """Bind and start accepting connections; returns ``self``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self._line_limit)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled or :meth:`stop` is called.

        The ``CancelledError`` produced by :meth:`stop` closing the listener
        is absorbed (stopping is a normal outcome); a cancellation injected
        from outside (task cancel, timeout scope) propagates as usual.
        """
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            if not self._stopping:
                raise

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close.

        In-flight requests (including ones still waiting on the engine's
        admission queue) run to completion and their responses are written;
        only then are connections torn down.  Requests *arriving* after the
        stop began are not started -- their connection simply closes.  The
        engine front-end is closed when this server created it (a
        caller-supplied :class:`AsyncMaxRSEngine` is left open).
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
        # Re-gather until quiescent: a connection handler that had already
        # read a line when the stop began may legally spawn one more request
        # task between our snapshots.
        while self._requests:
            await asyncio.gather(*list(self._requests),
                                 return_exceptions=True)
        await self.engine.drain()
        if self._owns_engine:
            await self.engine.close()
        # Unblock handlers parked in readline() on idle connections; their
        # pipelines are drained (above), so nothing is cut off mid-write.
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MaxRSServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        connection_tasks: Set[asyncio.Task] = set()
        self._connections.add(writer)
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or peer reset: drop the connection
                if not line or self._stopping:
                    break  # EOF, or a stop began while we were blocked here
                line = line.strip()
                if not line:
                    continue
                try:
                    request = protocol.decode_line(line)
                except SerializationError as exc:
                    await self._write(writer, write_lock,
                                      protocol.error_to_wire(None, exc))
                    continue
                if request.get("op") == "close":
                    # Drain this connection's pipeline first so the close
                    # acknowledgement is the last response on the socket.
                    await self._drain_tasks(connection_tasks)
                    await self._write(writer, write_lock,
                                      {"id": request.get("id"), "ok": True,
                                       "closing": True})
                    break
                # Every other request runs as its own task: the connection
                # keeps reading, so pipelined requests execute concurrently
                # (and identical ones coalesce inside the engine).
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock))
                connection_tasks.add(task)
                self._requests.add(task)
                task.add_done_callback(connection_tasks.discard)
                task.add_done_callback(self._requests.discard)
        finally:
            self._connections.discard(writer)
            await self._drain_tasks(connection_tasks)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _drain_tasks(tasks: Set[asyncio.Task]) -> None:
        pending = [task for task in tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, write_lock: asyncio.Lock,
                     response: Dict[str, Any]) -> None:
        async with write_lock:
            try:
                writer.write(protocol.encode_line(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer went away; nothing left to say

    async def _serve_request(self, request: Dict[str, Any],
                             writer: asyncio.StreamWriter,
                             write_lock: asyncio.Lock) -> None:
        """Dispatch one decoded request and write its response.

        Each request runs under a ``server.request`` span of the engine's
        tracer.  A client-supplied ``trace`` field continues the client's
        trace (same id server-side, fetchable back via the ``trace`` op)
        even when the server's own tracing is disabled; with no field and a
        disabled tracer this is a no-op.
        """
        request_id = request.get("id")
        trace_id = request.get("trace")
        if not isinstance(trace_id, str) or not trace_id:
            trace_id = None  # absent or malformed: start fresh (if enabled)
        tracer = self.engine.engine.tracer
        with tracer.trace("server.request", trace_id=trace_id,
                          op=str(request.get("op"))) as span:
            try:
                response = await self._dispatch(request)
            except ReproError as exc:
                span.set_attribute("error", type(exc).__name__)
                response = protocol.error_to_wire(request_id, exc)
            except Exception as exc:  # pragma: no cover - defensive
                span.set_attribute("error", type(exc).__name__)
                response = {"id": request_id, "ok": False,
                            "error": "InternalError", "message": repr(exc)}
        await self._write(writer, write_lock, response)

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        request_id = request.get("id")
        if op == "ping":
            return {"id": request_id, "ok": True, "pong": True}
        if op == "register":
            points = protocol.points_from_wire(request.get("points", []))
            handle = await self.engine.register_dataset(
                points, name=request.get("name"),
                replace=bool(request.get("replace", False)))
            return {"id": request_id, "ok": True,
                    "dataset": handle.dataset_id,
                    "fingerprint": handle.fingerprint,
                    "count": handle.count}
        if op == "unregister":
            await self.engine.unregister_dataset(
                _required(request, "dataset"),
                keep_snapshot=bool(request.get("keep_snapshot", False)))
            return {"id": request_id, "ok": True}
        if op == "query":
            spec = protocol.spec_from_wire(_required(request, "spec"))
            result = await self.engine.query(_required(request, "dataset"),
                                             spec,
                                             client_id=_client_id(request))
            return {"id": request_id, "ok": True,
                    "result": protocol.result_to_wire(result)}
        if op == "query_batch":
            specs = [protocol.spec_from_wire(wire)
                     for wire in _required(request, "specs")]
            results = await self.engine.query_batch(
                _required(request, "dataset"), specs,
                client_id=_client_id(request))
            return {"id": request_id, "ok": True,
                    "results": [protocol.result_to_wire(r) for r in results]}
        if op == "explain":
            spec = protocol.spec_from_wire(_required(request, "spec"))
            plan = await self.engine.explain(_required(request, "dataset"),
                                             spec)
            return {"id": request_id, "ok": True,
                    "plan": protocol.jsonable(plan)}
        if op == "trace_profile":
            trace_id = request.get("trace_id")
            profile = await self.engine.trace_profile(
                None if trace_id is None else str(trace_id))
            return {"id": request_id, "ok": True,
                    "profile": protocol.jsonable(profile)}
        if op == "stats":
            return {"id": request_id, "ok": True,
                    "stats": protocol.jsonable(self.engine.stats())}
        if op == "trace":
            trace_id = str(_required(request, "trace_id"))
            recorder = self.engine.engine.tracer.recorder
            find = getattr(recorder, "find", None)
            traces = find(trace_id) if find is not None else []
            return {"id": request_id, "ok": True,
                    "traces": [trace.to_dict() for trace in traces]}
        if op == "metrics_text":
            # The engine render (not the bare exporter): it samples the
            # resource gauges first, so every scrape carries current
            # RSS/CPU/queue-depth values for the whole fleet.
            return {"id": request_id, "ok": True,
                    "text": self.engine.engine.metrics_text()}
        if op == "healthz":
            return {"id": request_id, "ok": True,
                    "health": self.engine.healthz()}
        if op == "readyz":
            return {"id": request_id, "ok": True,
                    "health": self.engine.readyz()}
        raise SerializationError(
            f"unknown op {op!r}; expected one of {protocol.OPS}")


def _client_id(request: Dict[str, Any]) -> Optional[str]:
    """The request's ``client_id`` field, or ``None``.

    A request-level field like ``trace``: absent or malformed values mean
    "unattributed" rather than an error, so old clients interoperate.
    """
    value = request.get("client_id")
    if isinstance(value, str) and value:
        return value
    return None


def _required(request: Dict[str, Any], field: str) -> Any:
    value = request.get(field)
    if value is None:
        raise SerializationError(
            f"request op {request.get('op')!r} needs a {field!r} field")
    return value


async def serve(engine, *, host: str = "127.0.0.1",
                port: int = 0) -> MaxRSServer:
    """Start a :class:`MaxRSServer` and return it (read ``.port`` for the
    bound address); ``await server.stop()`` drains and shuts it down."""
    return await MaxRSServer(engine, host=host, port=port).start()

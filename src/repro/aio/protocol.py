"""JSON-lines wire protocol for the network query service.

One request or response per line (UTF-8 JSON, ``\\n``-terminated) -- trivially
debuggable with ``netcat``, framable with ``StreamReader.readline``, and
pipelinable: requests carry a client-chosen ``id`` that the response echoes,
so responses may return out of order.

Requests are ``{"op": ..., "id": ...}`` plus per-op fields:

========  ==========================================================
op        fields
========  ==========================================================
register  ``points`` ([[x, y, w], ...]), ``name``?, ``replace``?
unregister``dataset``, ``keep_snapshot``?
query     ``dataset``, ``spec``
query_batch ``dataset``, ``specs``
explain   ``dataset``, ``spec`` (returns the query plan; runs no sweep)
stats     --
trace     ``trace_id`` (returns the server-retained traces with that id)
trace_profile ``trace_id``? (per-stage self-time profile of retained traces)
metrics_text -- (Prometheus text exposition of the engine metrics)
healthz   -- (liveness verdict: ``ok``, ``status``, per-check detail)
readyz    -- (readiness verdict: ``ready``, ``status``, per-check detail)
ping      --
close     -- (server acknowledges, then closes the connection)
========  ==========================================================

Any request may additionally carry a ``trace`` field: a client-side trace id
(:mod:`repro.obs`) the server continues in its ``server.request`` span, so
one distributed trace covers client, server and engine.  Request-level
fields are never rejected as unknown -- a server predating the field simply
ignores it, and a client that never sends it loses nothing -- so tracing
interoperates with older peers by construction.

``query`` and ``query_batch`` requests may likewise carry a ``client_id``
field (a request-level field, like ``trace``): the server attributes the
work to that client in the engine's per-client accounting ledgers
(``stats()["clients"]``, ``client=``-labelled metrics series).  Engine
answers carry their per-query cost ledger in a ``cost`` object, elided when
absent -- an old client simply never reads it, and an old server never
sends it.

Responses are ``{"id": ..., "ok": true, ...}`` on success or ``{"id": ...,
"ok": false, "error": <exception class name>, "message": ...}`` on failure;
:func:`exception_from_wire` maps the error back onto the :mod:`repro.errors`
hierarchy so a remote :class:`~repro.errors.ServiceOverloadError` is catchable
exactly like a local one.

**Bit-identity across the wire**: every float is serialized by Python's
``json`` (shortest-repr round-trip, infinities allowed), so decoded results
compare equal, bit for bit, to the engine's in-process answers.  Numpy
scalars are converted to native floats/ints first (an exact conversion) --
``json`` would otherwise refuse them.  I/O snapshots are not shipped
(engine-served results carry ``io=None`` anyway).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Sequence, Tuple, Union

import repro.errors as errors
from repro.core.result import MaxCRSResult, MaxRegion, MaxRSResult
from repro.errors import ReproError, SerializationError
from repro.geometry import Point, WeightedPoint
from repro.service.engine import QueryResult, QuerySpec

__all__ = [
    "decode_line",
    "encode_line",
    "error_to_wire",
    "exception_from_wire",
    "points_from_wire",
    "points_to_wire",
    "result_from_wire",
    "result_to_wire",
    "spec_from_wire",
    "spec_to_wire",
]

#: The operations the server understands (validated at decode time).
OPS = ("register", "unregister", "query", "query_batch", "explain", "stats",
       "trace", "trace_profile", "metrics_text", "healthz", "readyz", "ping",
       "close")


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #
def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol message as a ``\\n``-terminated UTF-8 JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; malformed input raises SerializationError."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise SerializationError(
            f"protocol messages must be JSON objects, got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------- #
# Query specs
# ---------------------------------------------------------------------- #
def spec_to_wire(spec: QuerySpec) -> Dict[str, Any]:
    """A :class:`QuerySpec` as a plain JSON object (defaults elided)."""
    wire: Dict[str, Any] = {"kind": spec.kind}
    if spec.width is not None:
        wire["width"] = float(spec.width)
    if spec.height is not None:
        wire["height"] = float(spec.height)
    if spec.k != 1:
        wire["k"] = int(spec.k)
    if spec.diameter is not None:
        wire["diameter"] = float(spec.diameter)
    if not spec.refine:
        wire["refine"] = False
    if spec.error_bound is not None:
        wire["error_bound"] = float(spec.error_bound)
    return wire


def spec_from_wire(wire: Dict[str, Any]) -> QuerySpec:
    """Rebuild a :class:`QuerySpec`; its own validation rejects bad fields."""
    if not isinstance(wire, dict):
        raise SerializationError(
            f"query spec must be a JSON object, got {type(wire).__name__}")
    unknown = set(wire) - {"kind", "width", "height", "k", "diameter",
                           "refine", "error_bound"}
    if unknown:
        raise SerializationError(
            f"unknown query spec fields {sorted(unknown)}")
    try:
        return QuerySpec(
            kind=wire.get("kind", "maxrs"),
            width=wire.get("width"),
            height=wire.get("height"),
            k=wire.get("k", 1),
            diameter=wire.get("diameter"),
            refine=wire.get("refine", True),
            error_bound=wire.get("error_bound"),
        )
    except TypeError as exc:
        # Non-numeric field values; QuerySpec's own validation raises the
        # (typed) ConfigurationError for semantically invalid ones.
        raise SerializationError(f"malformed query spec: {exc}") from exc


# ---------------------------------------------------------------------- #
# Points
# ---------------------------------------------------------------------- #
def points_to_wire(objects: Sequence[WeightedPoint]) -> list:
    """Weighted points as ``[[x, y, w], ...]`` (compact, columnar-friendly)."""
    return [[float(o.x), float(o.y), float(o.weight)] for o in objects]


def points_from_wire(wire: Sequence) -> list:
    """Rebuild the weighted point list a ``register`` request carries."""
    points = []
    for row in wire:
        if not isinstance(row, (list, tuple)) or not 2 <= len(row) <= 3:
            raise SerializationError(
                f"points must be [x, y] or [x, y, weight] rows, got {row!r}")
        try:
            x, y = float(row[0]), float(row[1])
            weight = float(row[2]) if len(row) == 3 else 1.0
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"malformed point row {row!r}: {exc}") \
                from exc
        points.append(WeightedPoint(x, y, weight))
    return points


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
def _point_to_wire(point: Point) -> list:
    return [float(point.x), float(point.y)]


def _maxrs_to_wire(result: MaxRSResult) -> Dict[str, Any]:
    region = result.region
    wire = {
        "type": "maxrs",
        "location": _point_to_wire(result.location),
        "region": [float(region.x1), float(region.y1),
                   float(region.x2), float(region.y2), float(region.weight)],
        "total_weight": float(result.total_weight),
        "recursion_levels": int(result.recursion_levels),
        "leaf_count": int(result.leaf_count),
    }
    if result.gap is not None:
        wire["gap"] = float(result.gap)
    if result.cost is not None:
        wire["cost"] = jsonable(result.cost)
    return wire


def _maxrs_from_wire(wire: Dict[str, Any]) -> MaxRSResult:
    x1, y1, x2, y2, weight = (float(v) for v in wire["region"])
    loc_x, loc_y = (float(v) for v in wire["location"])
    gap = wire.get("gap")
    return MaxRSResult(
        location=Point(loc_x, loc_y),
        region=MaxRegion(x1=x1, y1=y1, x2=x2, y2=y2, weight=weight),
        total_weight=float(wire["total_weight"]),
        io=None,
        recursion_levels=int(wire["recursion_levels"]),
        leaf_count=int(wire["leaf_count"]),
        gap=None if gap is None else float(gap),
        cost=wire.get("cost"),
    )


def _maxcrs_to_wire(result: MaxCRSResult) -> Dict[str, Any]:
    wire: Dict[str, Any] = {
        "type": "maxcrs",
        "location": _point_to_wire(result.location),
        "total_weight": float(result.total_weight),
    }
    if result.candidates:
        wire["candidates"] = [_point_to_wire(p) for p in result.candidates]
        wire["candidate_weights"] = [float(w)
                                     for w in result.candidate_weights]
    if result.rectangle_result is not None:
        wire["rectangle_result"] = _maxrs_to_wire(result.rectangle_result)
    if result.gap is not None:
        wire["gap"] = float(result.gap)
    if result.cost is not None:
        wire["cost"] = jsonable(result.cost)
    return wire


def _maxcrs_from_wire(wire: Dict[str, Any]) -> MaxCRSResult:
    rectangle = wire.get("rectangle_result")
    gap = wire.get("gap")
    return MaxCRSResult(
        location=Point(*(float(v) for v in wire["location"])),
        total_weight=float(wire["total_weight"]),
        candidates=tuple(Point(*(float(v) for v in p))
                         for p in wire.get("candidates", ())),
        candidate_weights=tuple(float(w)
                                for w in wire.get("candidate_weights", ())),
        rectangle_result=None if rectangle is None
        else _maxrs_from_wire(rectangle),
        io=None,
        gap=None if gap is None else float(gap),
        cost=wire.get("cost"),
    )


def result_to_wire(result: QueryResult) -> Dict[str, Any]:
    """Any engine answer -- MaxRS, MaxkRS tuple, MaxCRS -- as a JSON object."""
    if isinstance(result, MaxRSResult):
        return _maxrs_to_wire(result)
    if isinstance(result, MaxCRSResult):
        return _maxcrs_to_wire(result)
    if isinstance(result, tuple):
        return {"type": "maxkrs",
                "results": [_maxrs_to_wire(r) for r in result]}
    raise SerializationError(
        f"cannot serialize result of type {type(result).__name__}")


def result_from_wire(wire: Dict[str, Any]
                     ) -> Union[MaxRSResult, Tuple[MaxRSResult, ...],
                                MaxCRSResult]:
    """Rebuild an engine answer from its wire form."""
    if not isinstance(wire, dict):
        raise SerializationError(
            f"result must be a JSON object, got {type(wire).__name__}")
    kind = wire.get("type")
    try:
        if kind == "maxrs":
            return _maxrs_from_wire(wire)
        if kind == "maxkrs":
            return tuple(_maxrs_from_wire(r) for r in wire["results"])
        if kind == "maxcrs":
            return _maxcrs_from_wire(wire)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed {kind} result: {exc}") from exc
    raise SerializationError(f"unknown result type {kind!r}")


# ---------------------------------------------------------------------- #
# Errors and JSON sanitation
# ---------------------------------------------------------------------- #
def error_to_wire(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """An error response naming the exception class and its message."""
    return {"id": request_id, "ok": False,
            "error": type(exc).__name__, "message": str(exc)}


def exception_from_wire(wire: Dict[str, Any]) -> ReproError:
    """Map an error response back onto the :mod:`repro.errors` hierarchy.

    Error names that resolve to a :class:`ReproError` subclass are re-raised
    as that type (so a remote overload is catchable like a local one); any
    other server-side failure degrades to a plain :class:`ReproError`.
    """
    name = wire.get("error", "ReproError")
    message = wire.get("message", "remote error")
    exc_type = getattr(errors, str(name), None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        return exc_type(message)
    return ReproError(f"{name}: {message}")


def jsonable(value: Any) -> Any:
    """Recursively coerce a stats tree into JSON-representable types.

    Engine statistics mix plain Python numbers with numpy scalars (grid
    shapes, occupancy counts) and tuple keys; this converts scalars via
    ``float``/``int`` (exact), stringifies non-string dictionary keys and
    turns tuples into lists, so ``json.dumps`` accepts the result verbatim.
    """
    if isinstance(value, dict):
        return {key if isinstance(key, str) else str(key): jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar: exact native conversion
        return jsonable(value.item())
    return str(value)

"""LRU buffer pool -- the "main memory" of the simulated EM model.

Every block access performed by an algorithm goes through the buffer pool.  A
block already resident in the pool is served without disk traffic (a *cache
hit*); otherwise the pool evicts the least-recently-used unpinned frame
(writing it back if dirty) and fetches the requested block from the
:class:`~repro.em.device.BlockDevice`, charging I/O on the device's counters.

The pool's capacity in frames is ``buffer_size / block_size`` -- the ``M/B``
memory blocks of the EM model -- so the experiments' "buffer size" knob
(Figures 13 and 15 of the paper) maps directly onto the pool capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.em.device import BlockDevice
from repro.errors import StorageError

__all__ = ["BufferPool", "Frame"]


@dataclass(slots=True)
class Frame:
    """A buffer-pool frame holding one block image."""

    block_id: int
    data: bytearray
    dirty: bool = False
    pin_count: int = 0
    #: Monotonic access stamp, informational only (LRU order is kept by the
    #: pool's ordered dictionary).
    last_access: int = field(default=0)


class BufferPool:
    """A fixed-capacity LRU cache of disk blocks.

    Parameters
    ----------
    device:
        The simulated disk to fetch from and write back to.
    capacity_blocks:
        Number of frames; defaults to the device configuration's
        ``num_buffer_blocks`` (``M/B``).

    Notes
    -----
    *Pinning* prevents eviction while an algorithm holds a reference to the
    frame's data (e.g. the per-run input buffers of the external merge).  A
    request that cannot be satisfied because every frame is pinned raises
    :class:`~repro.errors.StorageError`, which in practice signals that an
    algorithm tried to use more memory than the EM model allows.
    """

    def __init__(self, device: BlockDevice, capacity_blocks: Optional[int] = None) -> None:
        self.device = device
        if capacity_blocks is None:
            capacity_blocks = device.config.num_buffer_blocks
        if capacity_blocks < 1:
            raise StorageError(f"buffer pool needs at least one frame, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self._clock = 0

    # ------------------------------------------------------------------ #
    # Core access path
    # ------------------------------------------------------------------ #
    def get(self, block_id: int, *, pin: bool = False) -> Frame:
        """Return the frame for ``block_id``, fetching it from disk if needed.

        Parameters
        ----------
        block_id:
            The block to access.
        pin:
            When ``True`` the frame's pin count is incremented and the caller
            must later call :meth:`unpin`.
        """
        self._clock += 1
        frame = self._frames.get(block_id)
        if frame is not None:
            self._frames.move_to_end(block_id)
            self.device.stats.record_cache_hit()
        else:
            self._ensure_capacity()
            data = bytearray(self.device.read_block(block_id))
            frame = Frame(block_id=block_id, data=data)
            self._frames[block_id] = frame
        frame.last_access = self._clock
        if pin:
            frame.pin_count += 1
        return frame

    def put(self, block_id: int, data: bytes, *, pin: bool = False) -> Frame:
        """Install new contents for ``block_id`` in the pool and mark it dirty.

        The write to disk is deferred until the frame is evicted or flushed,
        mirroring a write-back cache.  The caller does not pay a read for a
        block it fully overwrites.
        """
        self._clock += 1
        frame = self._frames.get(block_id)
        if frame is None:
            self._ensure_capacity()
            frame = Frame(block_id=block_id, data=bytearray(data))
            self._frames[block_id] = frame
        else:
            frame.data = bytearray(data)
            self._frames.move_to_end(block_id)
        frame.dirty = True
        frame.last_access = self._clock
        if pin:
            frame.pin_count += 1
        return frame

    def mark_dirty(self, block_id: int) -> None:
        """Mark a resident block as modified in place."""
        try:
            self._frames[block_id].dirty = True
        except KeyError:
            raise StorageError(f"block {block_id} is not resident in the pool") from None

    def unpin(self, block_id: int) -> None:
        """Decrement the pin count of a resident block."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise StorageError(f"cannot unpin non-resident block {block_id}")
        if frame.pin_count <= 0:
            raise StorageError(f"block {block_id} is not pinned")
        frame.pin_count -= 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush_block(self, block_id: int) -> None:
        """Write back one dirty resident block (no-op if clean or absent)."""
        frame = self._frames.get(block_id)
        if frame is not None and frame.dirty:
            self.device.write_block(block_id, bytes(frame.data))
            frame.dirty = False

    def flush(self) -> None:
        """Write back every dirty resident block."""
        for frame in self._frames.values():
            if frame.dirty:
                self.device.write_block(frame.block_id, bytes(frame.data))
                frame.dirty = False

    def evict_all(self) -> None:
        """Flush and drop every unpinned frame (used between experiment runs)."""
        self.flush()
        pinned = {bid: f for bid, f in self._frames.items() if f.pin_count > 0}
        self._frames = OrderedDict(pinned)

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the pool without writing it back.

        Used when a temporary file is deleted: its cached contents are
        worthless and must not be counted as future cache hits.
        """
        self._frames.pop(block_id, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def resident_blocks(self) -> int:
        """Number of frames currently occupied."""
        return len(self._frames)

    def is_resident(self, block_id: int) -> bool:
        """Return ``True`` when ``block_id`` is currently cached."""
        return block_id in self._frames

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _ensure_capacity(self) -> None:
        """Evict LRU unpinned frames until there is room for one more block."""
        while len(self._frames) >= self.capacity_blocks:
            victim_id = self._find_victim()
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                self.device.write_block(victim.block_id, bytes(victim.data))

    def _find_victim(self) -> int:
        for block_id, frame in self._frames.items():  # iteration order = LRU order
            if frame.pin_count == 0:
                return block_id
        raise StorageError(
            "buffer pool exhausted: all "
            f"{self.capacity_blocks} frames are pinned"
        )

"""I/O accounting for the simulated external-memory environment.

The paper's sole performance metric is "the number of I/O's, precisely the
number of transferred blocks during the entire process".  :class:`IOStats`
counts exactly that: one unit per block moved between the simulated disk and
the buffer pool, split into reads and writes.  The experiment harness snapshots
the counters around each algorithm invocation and reports the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOSnapshot", "IOStats"]


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """An immutable snapshot of the I/O counters at a point in time."""

    block_reads: int
    block_writes: int

    @property
    def total(self) -> int:
        """Total number of transferred blocks (reads + writes)."""
        return self.block_reads + self.block_writes

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        """Return the per-counter difference ``self - other``."""
        return IOSnapshot(
            block_reads=self.block_reads - other.block_reads,
            block_writes=self.block_writes - other.block_writes,
        )


@dataclass(slots=True)
class IOStats:
    """Mutable I/O counters owned by a :class:`~repro.em.device.BlockDevice`.

    The storage layer increments the counters; algorithms and experiments only
    read them (via :meth:`snapshot` / :meth:`measure`).

    Examples
    --------
    >>> stats = IOStats()
    >>> stats.record_read(); stats.record_write()
    >>> stats.total_ios
    2
    """

    block_reads: int = 0
    block_writes: int = 0
    #: Number of logical block accesses that were served from the buffer pool
    #: without touching the disk.  Not part of the paper's metric, but useful
    #: for understanding caching behaviour (e.g. Figure 15a).
    cache_hits: int = field(default=0)

    # ------------------------------------------------------------------ #
    # Mutation (storage layer only)
    # ------------------------------------------------------------------ #
    def record_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block reads."""
        self.block_reads += blocks

    def record_write(self, blocks: int = 1) -> None:
        """Charge ``blocks`` block writes."""
        self.block_writes += blocks

    def record_cache_hit(self, blocks: int = 1) -> None:
        """Record ``blocks`` buffer-pool hits (no disk transfer)."""
        self.cache_hits += blocks

    def reset(self) -> None:
        """Reset every counter to zero."""
        self.block_reads = 0
        self.block_writes = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def total_ios(self) -> int:
        """Total number of transferred blocks (the paper's metric)."""
        return self.block_reads + self.block_writes

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current read/write counters."""
        return IOSnapshot(block_reads=self.block_reads, block_writes=self.block_writes)

    def since(self, start: IOSnapshot) -> IOSnapshot:
        """Return the I/O performed since ``start`` was taken."""
        return self.snapshot() - start

"""Fixed-size record codecs.

Every disk-resident file in the reproduction stores *fixed-size* records, so a
block of ``block_size`` bytes holds exactly ``B = block_size // record_size``
records.  A codec describes how one record (a flat tuple of numbers) maps to
bytes.  The concrete codecs used by the algorithms live in
:mod:`repro.em.codecs`; this module provides the generic machinery.

Infinite coordinates (``+/-inf``) are legal record fields -- slab-files start
with a ``-inf`` left endpoint, for instance -- and IEEE-754 doubles represent
them exactly, so no special casing is needed.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SerializationError

__all__ = ["RecordCodec", "StructRecordCodec"]

Record = Tuple[float, ...]


class RecordCodec:
    """Interface of a fixed-size record codec.

    Subclasses must provide :attr:`record_size`, :meth:`encode_one` and
    :meth:`decode_all`.  The block-level helpers (:meth:`encode_block`,
    :meth:`decode_block`) are shared.
    """

    #: Size in bytes of one encoded record.
    record_size: int

    def encode_one(self, record: Record) -> bytes:
        """Encode a single record to exactly :attr:`record_size` bytes."""
        raise NotImplementedError

    def decode_all(self, data: bytes) -> List[Record]:
        """Decode a buffer containing a whole number of records."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Block helpers
    # ------------------------------------------------------------------ #
    def encode_block(self, records: Sequence[Record], block_size: int) -> bytes:
        """Encode up to one block's worth of records.

        Raises
        ------
        SerializationError
            If the records do not fit in ``block_size`` bytes.
        """
        payload = b"".join(self.encode_one(r) for r in records)
        if len(payload) > block_size:
            raise SerializationError(
                f"{len(records)} records of {self.record_size} B "
                f"exceed block size {block_size} B"
            )
        return payload

    def decode_block(self, data: bytes) -> List[Record]:
        """Decode a block image produced by :meth:`encode_block`."""
        usable = (len(data) // self.record_size) * self.record_size
        return self.decode_all(data[:usable])


class StructRecordCodec(RecordCodec):
    """A codec backed by a :mod:`struct` format string.

    Parameters
    ----------
    fmt:
        A struct format describing one record, e.g. ``"<ddd"`` for an object
        record of two coordinates and a weight.  Little-endian formats are
        recommended so the record size is platform independent.

    Examples
    --------
    >>> codec = StructRecordCodec("<dd")
    >>> codec.record_size
    16
    >>> codec.decode_all(codec.encode_one((1.0, 2.0)))
    [(1.0, 2.0)]
    """

    def __init__(self, fmt: str) -> None:
        self._struct = struct.Struct(fmt)
        self.record_size = self._struct.size
        self.fmt = fmt

    def encode_one(self, record: Record) -> bytes:
        try:
            return self._struct.pack(*record)
        except struct.error as exc:
            raise SerializationError(
                f"record {record!r} does not match format {self.fmt!r}: {exc}"
            ) from exc

    def encode_many(self, records: Iterable[Record]) -> bytes:
        """Encode an iterable of records into one contiguous buffer."""
        pack = self._struct.pack
        try:
            return b"".join(pack(*r) for r in records)
        except struct.error as exc:
            raise SerializationError(
                f"a record does not match format {self.fmt!r}: {exc}"
            ) from exc

    def decode_all(self, data: bytes) -> List[Record]:
        if len(data) % self.record_size != 0:
            raise SerializationError(
                f"buffer of {len(data)} B is not a multiple of record size "
                f"{self.record_size} B"
            )
        return list(self._struct.iter_unpack(data))

    def iter_decode(self, data: bytes) -> Iterator[Record]:
        """Yield records lazily from a buffer (no intermediate list)."""
        if len(data) % self.record_size != 0:
            raise SerializationError(
                f"buffer of {len(data)} B is not a multiple of record size "
                f"{self.record_size} B"
            )
        return self._struct.iter_unpack(data)

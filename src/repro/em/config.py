"""Configuration of the simulated external-memory (EM) model.

The paper analyses and measures every algorithm in the standard EM model of
Aggarwal & Vitter / Goodrich et al., parameterized by

* ``N`` -- the number of objects in the database,
* ``M`` -- the number of objects that fit in main memory, and
* ``B`` -- the number of objects per disk block,

with the assumptions ``N >> M >= 2B``.  The experiments in Section 7 control
the model through two knobs: the *block size* (default 4 KB) and the *buffer
size* (default 256 KB for the real datasets and 1024 KB for the synthetic
ones).  :class:`EMConfig` captures exactly those two knobs and derives ``B``,
``M`` and the slab fan-out ``m = Theta(M/B)`` from them for any given record
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["EMConfig", "KIB", "DEFAULT_BLOCK_SIZE", "DEFAULT_BUFFER_SIZE"]

#: One kibibyte, used to express buffer sizes the way the paper does ("256KB").
KIB = 1024

#: The paper's default block size (Table 3).
DEFAULT_BLOCK_SIZE = 4 * KIB

#: The paper's default buffer size for synthetic datasets (Table 3).
DEFAULT_BUFFER_SIZE = 1024 * KIB


@dataclass(frozen=True, slots=True)
class EMConfig:
    """Parameters of the simulated external-memory environment.

    Parameters
    ----------
    block_size:
        Size of one disk block in bytes (the paper's default is 4096).
    buffer_size:
        Size of the main-memory buffer in bytes (the paper's defaults are
        262144 for real datasets and 1048576 for synthetic datasets).

    Raises
    ------
    ConfigurationError
        If either size is non-positive, or the buffer cannot hold at least two
        blocks (the EM-model assumption ``M >= 2B``).

    Examples
    --------
    >>> cfg = EMConfig(block_size=4096, buffer_size=262144)
    >>> cfg.num_buffer_blocks
    64
    >>> cfg.records_per_block(record_size=32)
    128
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    buffer_size: int = DEFAULT_BUFFER_SIZE

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError(f"block size must be positive, got {self.block_size}")
        if self.buffer_size <= 0:
            raise ConfigurationError(f"buffer size must be positive, got {self.buffer_size}")
        if self.buffer_size < 2 * self.block_size:
            raise ConfigurationError(
                "the EM model requires a buffer of at least two blocks "
                f"(buffer {self.buffer_size} B < 2 x block {self.block_size} B)"
            )

    # ------------------------------------------------------------------ #
    # Derived model parameters
    # ------------------------------------------------------------------ #
    @property
    def num_buffer_blocks(self) -> int:
        """The number of memory blocks, ``M/B`` in the paper's notation."""
        return self.buffer_size // self.block_size

    def records_per_block(self, record_size: int) -> int:
        """Return ``B``: how many records of ``record_size`` bytes fit in a block.

        Raises
        ------
        ConfigurationError
            If a single record does not fit in a block.
        """
        if record_size <= 0:
            raise ConfigurationError(f"record size must be positive, got {record_size}")
        per_block = self.block_size // record_size
        if per_block < 1:
            raise ConfigurationError(
                f"a record of {record_size} B does not fit in a {self.block_size} B block"
            )
        return per_block

    def memory_capacity_records(self, record_size: int) -> int:
        """Return ``M``: how many records of ``record_size`` bytes fit in the buffer."""
        return self.num_buffer_blocks * self.records_per_block(record_size)

    def merge_fanout(self) -> int:
        """Return the slab / merge fan-out ``m = Theta(M/B)``.

        Two buffer blocks are reserved -- one for the spanning-rectangle input
        stream and one for the output stream -- matching the accounting in the
        proof of Lemma 3; the remaining blocks each buffer one input slab-file.
        The fan-out is never smaller than 2 so the recursion always makes
        progress.
        """
        return max(2, self.num_buffer_blocks - 2)

    def with_buffer_size(self, buffer_size: int) -> "EMConfig":
        """Return a copy of this configuration with a different buffer size."""
        return EMConfig(block_size=self.block_size, buffer_size=buffer_size)

    def with_block_size(self, block_size: int) -> "EMConfig":
        """Return a copy of this configuration with a different block size."""
        return EMConfig(block_size=block_size, buffer_size=self.buffer_size)

"""Multiway external merge sort.

ExactMaxRS requires its input rectangles to be sorted by x-coordinate before
the division phase ("The dataset needs to be sorted by x-coordinates before it
is fed into Algorithm 2", proof of Theorem 2), and the plane-sweep baselines
require their event files to be sorted by y-coordinate.  Both use the textbook
external merge sort implemented here:

1. *Run formation*: read ``M`` records at a time, sort them in memory, and
   write each sorted chunk as a run -- ``O(N/B)`` I/Os.
2. *Multiway merge*: repeatedly merge up to ``M/B - 1`` runs into one (one
   input buffer block per run plus one output buffer block) until a single
   run remains -- ``O(N/B)`` I/Os per level, ``O(log_{M/B}(N/M))`` levels.

Total cost ``O((N/B) log_{M/B}(N/B))``, the sorting bound that also lower
bounds the MaxRS problem itself (Theorem 2).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

from repro.em.context import EMContext
from repro.em.record_file import RecordFile, RecordReader
from repro.em.serializer import RecordCodec
from repro.errors import AlgorithmError

__all__ = ["ExternalSorter", "external_sort"]

Record = Tuple[float, ...]
KeyFunc = Callable[[Record], object]


class ExternalSorter:
    """External merge sort over :class:`~repro.em.record_file.RecordFile`.

    Parameters
    ----------
    ctx:
        The external-memory context providing disk, buffer pool and counters.
    codec:
        Codec of the records being sorted (also used for the temporary runs).
    key:
        Sort key, as for :func:`sorted`.  Defaults to the whole record.
    """

    def __init__(self, ctx: EMContext, codec: RecordCodec,
                 key: Optional[KeyFunc] = None) -> None:
        self.ctx = ctx
        self.codec = codec
        self.key: KeyFunc = key if key is not None else (lambda record: record)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def sort(self, file: RecordFile, *, delete_input: bool = False) -> RecordFile:
        """Return a new file containing the records of ``file`` in sorted order.

        Parameters
        ----------
        file:
            The input file; it is left untouched unless ``delete_input`` is
            set.
        delete_input:
            When ``True`` the input file's blocks are released once the runs
            have been formed (the recursion of ExactMaxRS discards its
            unsorted temporaries this way).
        """
        runs = self._form_runs(file)
        if delete_input:
            file.delete()
        if not runs:
            return self.ctx.create_file(self.codec, name=f"{file.name}.sorted")
        while len(runs) > 1:
            runs = self._merge_level(runs)
        result = runs[0]
        result.name = f"{file.name}.sorted"
        return result

    # ------------------------------------------------------------------ #
    # Phase 1: run formation
    # ------------------------------------------------------------------ #
    def _form_runs(self, file: RecordFile) -> List[RecordFile]:
        memory_records = self.ctx.memory_capacity_records(self.codec.record_size)
        if memory_records < 1:
            raise AlgorithmError("memory cannot hold even one record")
        runs: List[RecordFile] = []
        chunk: List[Record] = []
        for record in file.reader():
            chunk.append(record)
            if len(chunk) >= memory_records:
                runs.append(self._write_run(chunk, len(runs)))
                chunk = []
        if chunk:
            runs.append(self._write_run(chunk, len(runs)))
        return runs

    def _write_run(self, chunk: List[Record], index: int) -> RecordFile:
        chunk.sort(key=self.key)
        run = self.ctx.create_file(self.codec, name=f"sort-run-{index}")
        run.write_all(chunk)
        return run

    # ------------------------------------------------------------------ #
    # Phase 2: multiway merge
    # ------------------------------------------------------------------ #
    def _merge_level(self, runs: List[RecordFile]) -> List[RecordFile]:
        fanout = max(2, self.ctx.config.num_buffer_blocks - 1)
        merged: List[RecordFile] = []
        for start in range(0, len(runs), fanout):
            group = runs[start:start + fanout]
            merged.append(self._merge_group(group))
        return merged

    def _merge_group(self, group: Sequence[RecordFile]) -> RecordFile:
        if len(group) == 1:
            return group[0]
        output = self.ctx.create_file(self.codec, name="sort-merge")
        readers = [run.reader() for run in group]
        heap: List[Tuple[object, int, Record, RecordReader]] = []
        for idx, reader in enumerate(readers):
            record = next(reader, None)
            if record is not None:
                heap.append((self.key(record), idx, record, reader))
        heapq.heapify(heap)
        with output.writer() as writer:
            while heap:
                _, idx, record, reader = heapq.heappop(heap)
                writer.append(record)
                nxt = next(reader, None)
                if nxt is not None:
                    heapq.heappush(heap, (self.key(nxt), idx, nxt, reader))
        for run in group:
            run.delete()
        return output


def external_sort(ctx: EMContext, file: RecordFile, codec: RecordCodec,
                  key: Optional[KeyFunc] = None, *,
                  delete_input: bool = False) -> RecordFile:
    """Convenience wrapper around :class:`ExternalSorter`.

    Examples
    --------
    Sort a file of object records by x-coordinate::

        sorted_file = external_sort(ctx, objects_file, OBJECT_CODEC,
                                    key=lambda record: record[0])
    """
    return ExternalSorter(ctx, codec, key).sort(file, delete_input=delete_input)

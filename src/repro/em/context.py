"""Bundled external-memory environment handed to every algorithm.

An :class:`EMContext` wires together the pieces of the simulated environment
-- configuration, disk, buffer pool and I/O counters -- and offers the small
set of operations algorithms actually need: creating record files and
measuring the I/O cost of a code region.  Passing a single context object
around (instead of device/pool/config triples) keeps algorithm signatures
small and guarantees that all of them are charged against the same counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.em.buffer_pool import BufferPool
from repro.em.config import EMConfig
from repro.em.counters import IOSnapshot, IOStats
from repro.em.device import BlockDevice
from repro.em.record_file import RecordFile
from repro.em.serializer import RecordCodec

__all__ = ["EMContext"]


class EMContext:
    """The simulated external-memory environment.

    Parameters
    ----------
    config:
        Block and buffer sizes; defaults to the paper's synthetic-dataset
        configuration (4 KB blocks, 1024 KB buffer).
    capacity_blocks:
        Optional override of the buffer-pool capacity in blocks; defaults to
        ``config.num_buffer_blocks``.

    Examples
    --------
    >>> from repro.em import EMContext, EMConfig
    >>> ctx = EMContext(EMConfig(block_size=4096, buffer_size=65536))
    >>> ctx.config.num_buffer_blocks
    16
    """

    def __init__(self, config: Optional[EMConfig] = None,
                 capacity_blocks: Optional[int] = None) -> None:
        self.config = config if config is not None else EMConfig()
        self.stats = IOStats()
        self.device = BlockDevice(self.config, self.stats)
        self.pool = BufferPool(self.device, capacity_blocks)
        self._file_counter = 0

    # ------------------------------------------------------------------ #
    # File management
    # ------------------------------------------------------------------ #
    def create_file(self, codec: RecordCodec, name: Optional[str] = None) -> RecordFile:
        """Create a new, empty record file on the simulated disk."""
        self._file_counter += 1
        if name is None:
            name = f"file-{self._file_counter}"
        return RecordFile(self.pool, codec, name=name)

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #
    @contextmanager
    def measure(self) -> Iterator[IOStats]:
        """Measure the I/O cost of a ``with`` block.

        Yields a fresh :class:`~repro.em.counters.IOStats` object whose
        counters, after the block exits, hold the number of block reads and
        writes performed inside the block (dirty buffers are flushed first so
        deferred writes are attributed to the block that produced them).
        """
        measured = IOStats()
        start = self.stats.snapshot()
        try:
            yield measured
        finally:
            self.pool.flush()
            delta = self.stats.since(start)
            measured.block_reads = delta.block_reads
            measured.block_writes = delta.block_writes

    def io_since(self, start: IOSnapshot) -> IOSnapshot:
        """Return the I/O performed since ``start`` (flushing dirty buffers)."""
        self.pool.flush()
        return self.stats.since(start)

    def reset_io(self) -> None:
        """Flush the pool and reset the I/O counters (between experiment runs)."""
        self.pool.flush()
        self.stats.reset()

    def clear_cache(self) -> None:
        """Flush and drop every cached block (cold-cache experiment runs)."""
        self.pool.evict_all()

    # ------------------------------------------------------------------ #
    # Derived model parameters (convenience passthroughs)
    # ------------------------------------------------------------------ #
    def memory_capacity_records(self, record_size: int) -> int:
        """``M`` for records of ``record_size`` bytes."""
        return self.config.memory_capacity_records(record_size)

    def records_per_block(self, record_size: int) -> int:
        """``B`` for records of ``record_size`` bytes."""
        return self.config.records_per_block(record_size)

    def merge_fanout(self) -> int:
        """The slab / merge fan-out ``m = Theta(M/B)``."""
        return self.config.merge_fanout()

"""Disk-resident files of fixed-size records.

A :class:`RecordFile` is an ordered sequence of records stored across disk
blocks of the simulated :class:`~repro.em.device.BlockDevice` and accessed
through the :class:`~repro.em.buffer_pool.BufferPool`.  It is the only way the
algorithms touch the disk, so every I/O they incur flows through this module
and is counted.

Access patterns provided:

* :class:`RecordWriter` -- append-only sequential writer.  Records are packed
  into an in-memory output buffer of one block and written when full, so
  writing ``n`` records costs ``ceil(n / B)`` block writes, matching the
  ``O(n/B)`` accounting used throughout the paper's proofs.
* :class:`RecordReader` -- sequential scanner.  Reading costs one block read
  per block not already resident in the buffer pool.
* :meth:`RecordFile.read_block_records` -- random access to one block, used by
  the external merge and by the aSB-tree baseline.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.em.buffer_pool import BufferPool
from repro.em.serializer import RecordCodec
from repro.errors import StorageError

__all__ = ["RecordFile", "RecordReader", "RecordWriter"]

Record = Tuple[float, ...]


class RecordFile:
    """An ordered, block-structured file of fixed-size records.

    Parameters
    ----------
    pool:
        The buffer pool through which all block traffic flows.
    codec:
        Codec describing the record layout.
    name:
        Optional human-readable name used in error messages and debugging.
    """

    def __init__(self, pool: BufferPool, codec: RecordCodec, name: str = "<anonymous>") -> None:
        self.pool = pool
        self.codec = codec
        self.name = name
        self.block_ids: List[int] = []
        self.num_records = 0
        self._deleted = False

    # ------------------------------------------------------------------ #
    # Derived sizes
    # ------------------------------------------------------------------ #
    @property
    def records_per_block(self) -> int:
        """``B`` for this file's record type."""
        return self.pool.device.config.records_per_block(self.codec.record_size)

    @property
    def num_blocks(self) -> int:
        """The number of blocks the file currently occupies."""
        return len(self.block_ids)

    def __len__(self) -> int:
        return self.num_records

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def writer(self) -> "RecordWriter":
        """Return an append-only writer positioned at the end of the file."""
        self._check_alive()
        if self.num_records % self.records_per_block != 0:
            raise StorageError(
                f"file {self.name!r} has a partially filled last block; "
                "appending after a partial block is not supported"
            )
        return RecordWriter(self)

    def write_all(self, records: Iterable[Record]) -> "RecordFile":
        """Append every record in ``records`` and return ``self``."""
        with self.writer() as writer:
            for record in records:
                writer.append(record)
        return self

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def reader(self) -> "RecordReader":
        """Return a sequential reader positioned at the start of the file."""
        self._check_alive()
        return RecordReader(self)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.reader())

    def read_all(self) -> List[Record]:
        """Read the entire file into memory (caller is responsible for fit)."""
        return list(self.reader())

    def read_block_records(self, block_index: int) -> List[Record]:
        """Return the records of the ``block_index``-th block of the file."""
        self._check_alive()
        if not 0 <= block_index < len(self.block_ids):
            raise StorageError(
                f"block index {block_index} out of range for file {self.name!r} "
                f"with {len(self.block_ids)} blocks"
            )
        frame = self.pool.get(self.block_ids[block_index])
        records = self.codec.decode_block(bytes(frame.data))
        if block_index == len(self.block_ids) - 1:
            remainder = self.num_records - block_index * self.records_per_block
            records = records[:remainder]
        return records

    def write_block_records(self, block_index: int, records: Sequence[Record]) -> None:
        """Overwrite the ``block_index``-th block with ``records``.

        Only the aSB-tree baseline uses in-place block updates; sequential
        algorithms always write fresh files.  The record count of the file is
        unchanged, so ``records`` must contain exactly as many records as the
        block previously held.
        """
        self._check_alive()
        if not 0 <= block_index < len(self.block_ids):
            raise StorageError(
                f"block index {block_index} out of range for file {self.name!r}"
            )
        expected = self._records_in_block(block_index)
        if len(records) != expected:
            raise StorageError(
                f"block {block_index} of file {self.name!r} holds {expected} records; "
                f"got {len(records)}"
            )
        payload = self.codec.encode_block(records, self.pool.device.config.block_size)
        self.pool.put(self.block_ids[block_index], payload)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def delete(self) -> None:
        """Release every block of the file (temporary files of the recursion)."""
        if self._deleted:
            return
        for block_id in self.block_ids:
            self.pool.invalidate(block_id)
            self.pool.device.free(block_id)
        self.block_ids = []
        self.num_records = 0
        self._deleted = True

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _records_in_block(self, block_index: int) -> int:
        if block_index < len(self.block_ids) - 1:
            return self.records_per_block
        return self.num_records - block_index * self.records_per_block

    def _check_alive(self) -> None:
        if self._deleted:
            raise StorageError(f"file {self.name!r} has been deleted")


class RecordWriter:
    """Append-only writer over a :class:`RecordFile`.

    The writer keeps one block's worth of records in memory (the output buffer
    of the EM model) and flushes it to a freshly allocated block when full.
    Use it as a context manager so the final partial block is flushed:

    >>> # doctest-style sketch; see tests for runnable examples
    >>> # with file.writer() as w:
    >>> #     w.append((1.0, 2.0, 3.0))
    """

    def __init__(self, file: RecordFile) -> None:
        self.file = file
        self._buffer: List[Record] = []
        self._closed = False

    def append(self, record: Record) -> None:
        """Append one record to the file."""
        if self._closed:
            raise StorageError(f"writer for file {self.file.name!r} is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.file.records_per_block:
            self._flush_buffer()

    def extend(self, records: Iterable[Record]) -> None:
        """Append every record in ``records``."""
        for record in records:
            self.append(record)

    def close(self) -> None:
        """Flush the final partial block and seal the writer."""
        if self._closed:
            return
        if self._buffer:
            self._flush_buffer()
        self._closed = True

    def _flush_buffer(self) -> None:
        device = self.file.pool.device
        block_id = device.allocate()
        payload = self.file.codec.encode_block(self._buffer, device.config.block_size)
        self.file.pool.put(block_id, payload)
        # Sequential writers immediately push the block to disk and release the
        # frame: the EM model gives a sequential writer a single output buffer,
        # not a cache of its own output.
        self.file.pool.flush_block(block_id)
        self.file.pool.invalidate(block_id)
        self.file.block_ids.append(block_id)
        self.file.num_records += len(self._buffer)
        self._buffer = []

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RecordReader:
    """Sequential reader over a :class:`RecordFile`.

    Iterating yields records in file order.  Each block is fetched through the
    buffer pool exactly once per pass (more precisely: once per pass during
    which it is not already resident).
    """

    def __init__(self, file: RecordFile) -> None:
        self.file = file
        self._block_index = 0
        self._records: List[Record] = []
        self._record_index = 0

    def __iter__(self) -> "RecordReader":
        return self

    def __next__(self) -> Record:
        while self._record_index >= len(self._records):
            if self._block_index >= self.file.num_blocks:
                raise StopIteration
            self._records = self.file.read_block_records(self._block_index)
            self._record_index = 0
            self._block_index += 1
        record = self._records[self._record_index]
        self._record_index += 1
        return record

    def peek(self) -> Optional[Record]:
        """Return the next record without consuming it, or ``None`` at EOF."""
        while self._record_index >= len(self._records):
            if self._block_index >= self.file.num_blocks:
                return None
            self._records = self.file.read_block_records(self._block_index)
            self._record_index = 0
            self._block_index += 1
        return self._records[self._record_index]

"""Concrete record codecs for every disk-resident record type.

The reproduction stores five kinds of records on the simulated disk:

* **object records** ``(x, y, weight)`` -- the input dataset ``O``;
* **rectangle records** ``(x1, y1, x2, y2, weight)`` -- the dual rectangles
  produced by the problem transformation, and the spanning-rectangle files of
  the ExactMaxRS recursion;
* **max-interval records** ``(y, x1, x2, sum)`` -- the tuples of a slab-file
  (Definition 6: ``t = <y, [x1, x2], sum>``);
* **event records** ``(y, kind, x1, x2, weight)`` -- sweep-line events used by
  the externalized plane-sweep baselines (kind is +1 for a bottom edge and -1
  for a top edge);
* **column records** ``(value,)`` -- one float64 component of a *columnar*
  snapshot (:mod:`repro.persist`): a dataset's ``x``, ``y`` and ``weight``
  columns (and a grid index's flattened cell aggregates) are each stored as a
  dense run of column records, so a block is exactly a contiguous slice of one
  numpy column and decoding is a ``frombuffer`` away.

All codecs use little-endian IEEE-754 doubles, so record sizes -- and thus the
EM parameter ``B`` -- are identical on every platform: 24, 40, 32, 40 and 8
bytes respectively.  With the paper's 4 KB blocks this yields B = 170, 102,
128, 102 and 512 records per block.
"""

from __future__ import annotations

from typing import Tuple

from repro.em.serializer import StructRecordCodec
from repro.geometry import Rect, WeightedPoint

__all__ = [
    "COLUMN_CODEC",
    "OBJECT_CODEC",
    "RECT_CODEC",
    "MAX_INTERVAL_CODEC",
    "EVENT_CODEC",
    "object_to_record",
    "record_to_object",
    "rect_to_record",
    "record_to_rect",
    "EVENT_BOTTOM",
    "EVENT_TOP",
]

#: Codec for input objects ``(x, y, weight)``.
OBJECT_CODEC = StructRecordCodec("<ddd")

#: Codec for weighted rectangles ``(x1, y1, x2, y2, weight)``.
RECT_CODEC = StructRecordCodec("<ddddd")

#: Codec for slab-file tuples ``(y, x1, x2, sum)``.
MAX_INTERVAL_CODEC = StructRecordCodec("<dddd")

#: Codec for plane-sweep events ``(y, kind, x1, x2, weight)``.
EVENT_CODEC = StructRecordCodec("<ddddd")

#: Codec for columnar snapshots: one float64 column component per record.
COLUMN_CODEC = StructRecordCodec("<d")

#: Event kind marking the bottom edge of a rectangle (interval insertion).
EVENT_BOTTOM = 1.0

#: Event kind marking the top edge of a rectangle (interval deletion).
EVENT_TOP = -1.0


def object_to_record(obj: WeightedPoint) -> Tuple[float, float, float]:
    """Convert a :class:`~repro.geometry.WeightedPoint` to an object record."""
    return (obj.x, obj.y, obj.weight)


def record_to_object(record: Tuple[float, ...]) -> WeightedPoint:
    """Convert an object record back to a :class:`~repro.geometry.WeightedPoint`."""
    x, y, weight = record
    return WeightedPoint(x, y, weight)


def rect_to_record(rect: Rect, weight: float) -> Tuple[float, float, float, float, float]:
    """Convert a rectangle plus weight to a rectangle record."""
    return (rect.x1, rect.y1, rect.x2, rect.y2, weight)


def record_to_rect(record: Tuple[float, ...]) -> Tuple[Rect, float]:
    """Convert a rectangle record back to ``(Rect, weight)``."""
    x1, y1, x2, y2, weight = record
    return Rect(x1, y1, x2, y2), weight

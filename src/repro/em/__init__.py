"""Simulated external-memory (EM) substrate.

This package is the cost model of the reproduction.  It simulates the standard
EM model used by the paper -- a disk of fixed-size blocks, a main-memory
buffer of ``M/B`` blocks, and I/O measured as the number of transferred blocks
-- entirely in process and deterministically:

* :class:`~repro.em.config.EMConfig` -- block size and buffer size (the two
  knobs of Table 3) plus the derived parameters ``B``, ``M`` and the merge
  fan-out ``m``.
* :class:`~repro.em.device.BlockDevice` -- the simulated disk; every block
  transfer increments :class:`~repro.em.counters.IOStats`.
* :class:`~repro.em.buffer_pool.BufferPool` -- LRU write-back cache of
  ``M/B`` frames standing in for main memory.
* :class:`~repro.em.record_file.RecordFile` -- block-structured files of
  fixed-size records (datasets, slab-files, event files, sorted runs).
* :class:`~repro.em.external_sort.ExternalSorter` -- the textbook multiway
  external merge sort, ``O((N/B) log_{M/B}(N/B))`` I/Os.
* :class:`~repro.em.context.EMContext` -- the bundle handed to every
  algorithm.

Substitution note (see DESIGN.md): the paper ran on a physical disk and
measured transferred 4 KB blocks; this package reproduces the *count* of
transfers exactly while remaining machine independent.
"""

from repro.em.buffer_pool import BufferPool, Frame
from repro.em.codecs import (
    COLUMN_CODEC,
    EVENT_BOTTOM,
    EVENT_CODEC,
    EVENT_TOP,
    MAX_INTERVAL_CODEC,
    OBJECT_CODEC,
    RECT_CODEC,
    object_to_record,
    record_to_object,
    record_to_rect,
    rect_to_record,
)
from repro.em.config import DEFAULT_BLOCK_SIZE, DEFAULT_BUFFER_SIZE, KIB, EMConfig
from repro.em.context import EMContext
from repro.em.counters import IOSnapshot, IOStats
from repro.em.device import BlockDevice
from repro.em.external_sort import ExternalSorter, external_sort
from repro.em.record_file import RecordFile, RecordReader, RecordWriter
from repro.em.serializer import RecordCodec, StructRecordCodec

__all__ = [
    "BlockDevice",
    "BufferPool",
    "COLUMN_CODEC",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BUFFER_SIZE",
    "EMConfig",
    "EMContext",
    "EVENT_BOTTOM",
    "EVENT_CODEC",
    "EVENT_TOP",
    "ExternalSorter",
    "Frame",
    "IOSnapshot",
    "IOStats",
    "KIB",
    "MAX_INTERVAL_CODEC",
    "OBJECT_CODEC",
    "RECT_CODEC",
    "RecordCodec",
    "RecordFile",
    "RecordReader",
    "RecordWriter",
    "StructRecordCodec",
    "external_sort",
    "object_to_record",
    "record_to_object",
    "record_to_rect",
    "rect_to_record",
]

"""Simulated block-addressable storage device.

The paper measures algorithms by the number of 4 KB blocks transferred between
disk and memory.  :class:`BlockDevice` is the "disk" of this reproduction: a
block-addressable byte store that charges one unit of I/O per block read or
written.  Algorithms never talk to the device directly -- they go through a
:class:`~repro.em.buffer_pool.BufferPool`, which is the "memory" side of the
model and decides when a transfer actually happens.

The device is deliberately an in-process simulation rather than a real file on
the host filesystem: the metric of interest is the *count* of block transfers,
which the simulation reproduces exactly, deterministically, and independently
of the host's page cache.
"""

from __future__ import annotations

from typing import Dict, List

from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.errors import StorageError

__all__ = ["BlockDevice"]


class BlockDevice:
    """An in-memory simulation of a block-addressable disk.

    Parameters
    ----------
    config:
        The external-memory configuration; only ``config.block_size`` is used
        by the device itself.
    stats:
        Optional pre-existing counters to charge I/O to; a fresh
        :class:`~repro.em.counters.IOStats` is created when omitted.

    Notes
    -----
    Blocks are identified by dense integer ids handed out by
    :meth:`allocate`.  Freeing a block makes its id invalid; reading an
    invalid or never-written block raises :class:`~repro.errors.StorageError`.
    """

    def __init__(self, config: EMConfig, stats: IOStats | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else IOStats()
        self._blocks: Dict[int, bytes] = {}
        self._next_id = 0
        self._free_ids: List[int] = []

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(self) -> int:
        """Allocate a new block and return its id.

        Allocation itself is free (no I/O is charged until the block is
        actually written).
        """
        if self._free_ids:
            block_id = self._free_ids.pop()
        else:
            block_id = self._next_id
            self._next_id += 1
        self._blocks[block_id] = b""
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block id.  Freeing is not charged as I/O."""
        if block_id not in self._blocks:
            raise StorageError(f"cannot free unknown block {block_id}")
        del self._blocks[block_id]
        self._free_ids.append(block_id)

    def restore_block(self, data: bytes) -> int:
        """Install a block image that already lives on durable media.

        Used by :mod:`repro.persist` to mirror a host-file snapshot back onto
        the simulated disk after a restart.  Installing is free -- the bytes
        are already "on disk"; the transfer into memory is charged when the
        block is subsequently read through the buffer pool, exactly as for
        any other disk-resident block.

        Raises
        ------
        StorageError
            If the payload exceeds the block size.
        """
        if len(data) > self.config.block_size:
            raise StorageError(
                f"payload of {len(data)} B exceeds block size {self.config.block_size} B"
            )
        block_id = self.allocate()
        self._blocks[block_id] = bytes(data)
        return block_id

    # ------------------------------------------------------------------ #
    # Transfers (each call is one charged I/O)
    # ------------------------------------------------------------------ #
    def read_block(self, block_id: int) -> bytes:
        """Transfer one block from disk to memory and charge one read."""
        try:
            data = self._blocks[block_id]
        except KeyError:
            raise StorageError(f"read of unknown block {block_id}") from None
        self.stats.record_read()
        return data

    def write_block(self, block_id: int, data: bytes) -> None:
        """Transfer one block from memory to disk and charge one write.

        Raises
        ------
        StorageError
            If the block id is unknown or the payload exceeds the block size.
        """
        if block_id not in self._blocks:
            raise StorageError(f"write to unknown block {block_id}")
        if len(data) > self.config.block_size:
            raise StorageError(
                f"payload of {len(data)} B exceeds block size {self.config.block_size} B"
            )
        self._blocks[block_id] = bytes(data)
        self.stats.record_write()

    # ------------------------------------------------------------------ #
    # Introspection (free of charge; used by tests and reporting)
    # ------------------------------------------------------------------ #
    @property
    def num_allocated_blocks(self) -> int:
        """The number of currently allocated blocks."""
        return len(self._blocks)

    def peek(self, block_id: int) -> bytes:
        """Return a block's contents without charging I/O (test helper only)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(f"peek of unknown block {block_id}") from None

    def is_allocated(self, block_id: int) -> bool:
        """Return ``True`` when ``block_id`` is currently allocated."""
        return block_id in self._blocks

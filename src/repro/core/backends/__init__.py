"""Pluggable execution backends for the in-memory plane sweep.

The in-memory sweep is the hot loop of the whole reproduction: it is the base
case of the ExactMaxRS recursion and the refine stage of the resident query
engine.  This package separates the sweep's *contract* from its *execution
strategy*, the way hybrid-engine systems keep one logical operator with
several specialised implementations:

* :class:`SweepBackend` -- the protocol: event records in, slab-file tuples
  plus the best strip out (exactly the signature of
  :func:`repro.core.plane_sweep.sweep_events`);
* :class:`~repro.core.backends.pure.PurePythonBackend` -- the reference
  implementation, a lazy segment tree in pure Python.  Always available;
* :class:`~repro.core.backends.numpy_backend.NumpySweepBackend` -- a
  numpy-vectorised sweep (chunked difference-array profile maintenance) that
  is several times faster at serving scale.  Available only when numpy is
  importable.

Selection is by name (``"pure"`` / ``"numpy"``), by instance, or automatic
(``None`` / ``"auto"``): numpy for event counts at or above
:func:`auto_crossover` (where vectorisation amortises its fixed overhead),
pure Python below it and whenever numpy is absent.

Determinism contract
--------------------
Both backends compute the same elementary cells, the same leftmost argmax
and the same maximal-run extension rule, so whenever every intermediate
location-weight sum is exactly representable in an IEEE-754 double (always
true for integer-valued weights up to 2**53), their slab-files and results
are **bit-identical**.  For weights whose partial sums round, answers agree
up to floating-point associativity of the profile sums; the property tests
pin the exact case.
"""

from __future__ import annotations

import os
from typing import List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

from repro.core.beststrip import BestStrip
from repro.errors import ConfigurationError
from repro.geometry import Interval

__all__ = [
    "BackendSpec",
    "SweepBackend",
    "SweepRecord",
    "SweepOutput",
    "DEFAULT_NUMPY_CROSSOVER",
    "auto_crossover",
    "available_backends",
    "backend_summary",
    "get_backend",
    "numpy_available",
    "numpy_version",
    "resolve_backend",
]

SweepRecord = Tuple[float, ...]

#: (slab-file records, best strip) -- the output contract of every backend.
SweepOutput = Tuple[List[SweepRecord], BestStrip]

#: Below this many event records the pure-Python sweep wins: the vectorised
#: backend pays fixed costs (array conversion, per-chunk numpy dispatch) that
#: only amortise on larger inputs.  Override with ``REPRO_SWEEP_CROSSOVER``.
DEFAULT_NUMPY_CROSSOVER = 2048


@runtime_checkable
class SweepBackend(Protocol):
    """The contract every sweep backend implements.

    A backend is a drop-in execution strategy for
    :func:`repro.core.plane_sweep.sweep_events`: it receives the flat event
    records ``(y, kind, x1, x2, weight)`` of a slab's dual rectangles and
    returns the slab-file (one max-interval tuple per distinct event
    y-coordinate, ascending) together with the best strip of the sweep.
    """

    #: Stable identifier used for selection, metrics and artefact logging.
    name: str

    def sweep(self, event_records: Sequence[SweepRecord],
              slab_range: Optional[Interval] = None, *,
              include_records: bool = True) -> SweepOutput:
        """Run the sweep.

        With ``include_records=False`` the caller promises to ignore the
        slab-file (as :func:`~repro.core.plane_sweep.solve_in_memory` does,
        which only consumes the best strip); backends may then skip
        materialising the per-h-line tuples and return an empty list.
        """
        ...


#: Anything accepted as a backend selector throughout the library: a
#: concrete instance, a backend name, or ``None`` / ``"auto"`` for the
#: size-based rule of :func:`resolve_backend`.
BackendSpec = Union[str, SweepBackend, None]


def numpy_available() -> bool:
    """Whether the numpy backend can run in this interpreter."""
    from repro.core.backends.numpy_backend import np

    return np is not None


def numpy_version() -> Optional[str]:
    """The importable numpy's version string, or ``None`` when absent."""
    from repro.core.backends.numpy_backend import np

    return None if np is None else str(np.__version__)


def auto_crossover() -> int:
    """Event-count threshold at which auto-selection switches to numpy.

    Reads ``REPRO_SWEEP_CROSSOVER`` so deployments can tune the switch point
    to their hardware without code changes.
    """
    raw = os.environ.get("REPRO_SWEEP_CROSSOVER")
    if raw is None:
        return DEFAULT_NUMPY_CROSSOVER
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SWEEP_CROSSOVER must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"REPRO_SWEEP_CROSSOVER must be non-negative, got {value}"
        )
    return value


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can run right now, reference first."""
    names = ["pure"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def get_backend(name: str) -> SweepBackend:
    """Return a backend instance by name.

    Raises
    ------
    ConfigurationError
        For unknown names, or for ``"numpy"`` when numpy is not importable.
    """
    if name == "pure":
        from repro.core.backends.pure import PurePythonBackend

        return PurePythonBackend()
    if name == "numpy":
        if not numpy_available():
            raise ConfigurationError(
                "the numpy sweep backend was requested but numpy is not "
                "importable; install numpy or select backend='pure'"
            )
        from repro.core.backends.numpy_backend import NumpySweepBackend

        return NumpySweepBackend()
    raise ConfigurationError(
        f"unknown sweep backend {name!r}; expected 'pure' or 'numpy' "
        "(for 'auto' / size-based selection use resolve_backend)"
    )


def resolve_backend(backend: BackendSpec, num_events: int) -> SweepBackend:
    """Resolve a backend specification to a concrete instance.

    ``backend`` may be an instance (returned as-is), a name (``"pure"`` /
    ``"numpy"``), or ``None`` / ``"auto"`` for the size-based rule: numpy for
    ``num_events >= auto_crossover()`` when numpy is importable, pure Python
    otherwise.  The rule keeps tiny sweeps (ExactMaxRS leaves, probe windows)
    on the low-overhead reference path and routes big refines to the
    vectorised one.

    Raises
    ------
    ConfigurationError
        For unknown names, unavailable backends, or objects that do not
        implement the :class:`SweepBackend` protocol.
    """
    if backend is None or backend == "auto":
        if numpy_available() and num_events >= auto_crossover():
            return get_backend("numpy")
        return get_backend("pure")
    if isinstance(backend, str):
        return get_backend(backend)
    if not isinstance(backend, SweepBackend):
        raise ConfigurationError(
            f"sweep backend must be a name or implement SweepBackend "
            f"(a 'name' attribute and a 'sweep' method), got {backend!r}"
        )
    return backend


def backend_summary(backend: Union[str, SweepBackend, None] = None) -> str:
    """One-line description of the active backend configuration.

    Used by the benchmark artefact log so perf numbers recorded across PRs
    stay attributable to the sweep implementation that produced them, e.g.
    ``auto (numpy 2.4.6, crossover 2048)`` or ``pure (numpy absent)``.
    """
    version = numpy_version()
    numpy_note = f"numpy {version}" if version is not None else "numpy absent"
    if backend is None or backend == "auto":
        if version is None:
            return f"auto -> pure ({numpy_note})"
        return f"auto ({numpy_note}, crossover {auto_crossover()})"
    name = backend if isinstance(backend, str) else backend.name
    return f"{name} ({numpy_note})"

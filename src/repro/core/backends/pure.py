"""The reference sweep backend: the pure-Python lazy segment tree.

This is the original :func:`repro.core.plane_sweep.sweep_events` behind the
:class:`~repro.core.backends.SweepBackend` protocol.  It exists as a named
backend for three reasons:

* it is always available (no third-party dependency);
* it is the semantic reference the vectorised backends are property-tested
  against (see ``tests/test_core_backends.py``);
* per-call overhead is minimal, which makes it the faster choice for the
  small sweeps that dominate ExactMaxRS leaves and grid probe windows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.plane_sweep import sweep_events
from repro.geometry import Interval

__all__ = ["PurePythonBackend"]


class PurePythonBackend:
    """Sweep backend delegating to the pure-Python plane sweep."""

    name = "pure"

    def sweep(self, event_records: Sequence[tuple],
              slab_range: Optional[Interval] = None, *,
              include_records: bool = True):
        # The segment-tree sweep produces its tuples as a by-product of the
        # per-h-line queries, so there is nothing to save when the caller
        # only wants the best strip; ``include_records`` is accepted for
        # protocol compatibility.
        return sweep_events(event_records, slab_range)

"""Numpy-vectorised sweep backend (chunked difference-array plane sweep).

The pure-Python sweep spends its time in per-event segment-tree recursion:
``O(log n)`` Python frames per edge, ~45 us per event at serving scale.  This
backend replaces the dynamic tree with an *offline* formulation that numpy
can chew through in bulk:

1. **Vectorised preparation** -- event sorting (stable argsort on y),
   clipping, elementary-boundary extraction (``np.unique``) and coordinate
   compression (``np.searchsorted``) all happen in whole-array operations.
2. **Chunked profile maintenance** -- h-lines are processed in chunks.  The
   location-weight profile at a chunk's start (``V0``, one value per
   elementary cell) is carried as a flat array.  Within a chunk the only
   profile changes are the chunk's own ``E`` edges, so the x-axis collapses
   to at most ``2E + 1`` *chunk segments* on which every change is constant:
   per-segment maxima of ``V0`` come from ``np.maximum.reduceat``, and the
   evolution of the per-segment offsets over the chunk's h-lines is two
   cumulative sums over a small ``(h-lines x segments)`` difference matrix.
   Each h-line's global maximum is then a row maximum of a matrix that is a
   few hundred elements wide, instead of a tree query over 10^5 cells.
3. **Leftmost argmax and maximal runs** -- resolved per chunk with segmented
   index tricks (``np.minimum.reduceat`` over masked cell indices); only the
   rare runs that cross chunk-segment boundaries (or sit within the
   floating-point run tolerance) fall back to small per-h-line scans.

When the caller only needs the best strip (``include_records=False`` -- the
resident engine's refine stage), steps emitting per-h-line tuples are skipped
entirely: the chunk loop reduces to row maxima, and the single winning
h-line's profile is reconstructed once at the end.

The emitted tuples follow the reference backend's conventions exactly (same
cell boundaries, leftmost argmax, same ``1e-12`` relative run tolerance), so
results are bit-identical to :class:`~repro.core.backends.pure.
PurePythonBackend` whenever the location-weight sums are exactly
representable -- see the determinism contract in
:mod:`repro.core.backends`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.beststrip import BestStrip
from repro.em.codecs import EVENT_BOTTOM
from repro.errors import AlgorithmError, ConfigurationError
from repro.geometry import Interval

try:  # guarded: the package must import (and report) cleanly without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None

__all__ = ["NumpySweepBackend"]

#: Default number of h-lines per chunk.  Large enough to amortise per-chunk
#: numpy dispatch and the O(cells) segment rebuild, small enough that the
#: per-chunk difference matrix stays cache-resident.
DEFAULT_CHUNK_HLINES = 128

#: Relative tolerance of the maximal-run extension -- must match
#: :meth:`repro.core.segment_tree.MaxAddSegmentTree.max_run_from` exactly.
_RUN_TOLERANCE = 1e-12


class NumpySweepBackend:
    """Vectorised sweep backend; requires numpy.

    Parameters
    ----------
    chunk_hlines:
        H-lines processed per vectorised chunk (performance knob only; the
        output is independent of it).
    """

    name = "numpy"

    def __init__(self, chunk_hlines: int = DEFAULT_CHUNK_HLINES) -> None:
        if np is None:
            raise ConfigurationError(
                "NumpySweepBackend requires numpy, which is not importable"
            )
        if chunk_hlines < 1:
            raise ConfigurationError(
                f"chunk_hlines must be at least 1, got {chunk_hlines}"
            )
        self.chunk_hlines = chunk_hlines

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def sweep(self, event_records: Sequence[Tuple[float, ...]],
              slab_range: Optional[Interval] = None, *,
              include_records: bool = True):
        if slab_range is None:
            slab_range = Interval.full()
        slab_lo, slab_hi = slab_range.lo, slab_range.hi
        if len(event_records) == 0:
            return [], BestStrip.empty(slab_lo, slab_hi)

        ev = np.asarray(event_records, dtype=np.float64)
        if ev.ndim != 2 or ev.shape[1] != 5:
            raise AlgorithmError(
                f"event records must be (y, kind, x1, x2, weight) tuples, "
                f"got array of shape {ev.shape}"
            )
        order = np.argsort(ev[:, 0], kind="stable")
        ev = ev[order]
        ey = ev[:, 0]

        # Clip to the slab; events that survive clipping contribute cell
        # boundaries, and those with non-zero weight are applied to the
        # profile (mirroring the reference sweep, which skips zero-weight
        # edges *after* boundary extraction).
        lo = np.maximum(ev[:, 2], slab_lo)
        hi = np.minimum(ev[:, 3], slab_hi)
        clipped = lo < hi
        applies = clipped & (ev[:, 4] != 0.0)

        coords = np.concatenate((lo[clipped], hi[clipped],
                                 np.array([slab_lo, slab_hi])))
        coords = coords[~np.isnan(coords)]
        xs = np.unique(coords)
        num_cells = len(xs) - 1
        if num_cells < 1:
            return [], BestStrip.empty(slab_lo, slab_hi)

        # Distinct h-lines, ascending, and each applying event's h-line.
        new_hline = np.empty(len(ey), dtype=bool)
        new_hline[0] = True
        np.not_equal(ey[1:], ey[:-1], out=new_hline[1:])
        uy = ey[new_hline]
        h_index = np.cumsum(new_hline) - 1

        left = np.searchsorted(xs, lo[applies])
        right = np.searchsorted(xs, hi[applies])  # exclusive end cell
        weights = ev[:, 4][applies]
        delta = np.where(ev[:, 1][applies] == EVENT_BOTTOM, weights, -weights)
        event_h = h_index[applies]

        if include_records:
            return self._sweep_records(uy, xs, num_cells,
                                       left, right, delta, event_h)
        return self._sweep_best_only(uy, xs, num_cells,
                                     left, right, delta, event_h)

    # ------------------------------------------------------------------ #
    # Shared chunk machinery
    # ------------------------------------------------------------------ #
    def _chunks(self, num_hlines: int, event_h: "np.ndarray"):
        """Yield ``(t0, t1, e0, e1)``: h-line and event ranges per chunk."""
        starts = np.arange(0, num_hlines, self.chunk_hlines)
        bounds = np.append(starts, num_hlines)
        event_bounds = np.searchsorted(event_h, bounds)
        for index, t0 in enumerate(bounds[:-1]):
            yield (int(t0), int(bounds[index + 1]),
                   int(event_bounds[index]), int(event_bounds[index + 1]))

    @staticmethod
    def _chunk_offsets(V0, num_cells, t0, t1, e0, e1, left, right, delta,
                       event_h):
        """Segment structure and per-h-line offset matrix of one chunk.

        Returns ``(bnd, M0, W, net)`` where ``bnd`` are the chunk-segment
        cell boundaries, ``M0[s]`` the max of ``V0`` on segment ``s``,
        ``W[t, s] = M0[s] + Delta_t[s]`` the per-segment maxima after the
        chunk's first ``t+1`` h-lines, and ``net[s]`` the chunk's total
        per-segment delta (for carrying ``V0`` forward).
        """
        cl = left[e0:e1]
        cr = right[e0:e1]
        cd = delta[e0:e1]
        rows = event_h[e0:e1] - t0
        bnd = np.unique(np.concatenate((cl, cr,
                                        np.array([0, num_cells],
                                                 dtype=cl.dtype))))
        M0 = np.maximum.reduceat(V0, bnd[:-1])
        sl = np.searchsorted(bnd, cl)
        sr = np.searchsorted(bnd, cr)
        diff = np.zeros((t1 - t0, len(bnd)))
        np.add.at(diff, (rows, sl), cd)
        np.add.at(diff, (rows, sr), -cd)
        np.cumsum(diff, axis=1, out=diff)      # un-diff over segments
        np.cumsum(diff, axis=0, out=diff)      # accumulate over h-lines
        W = diff[:, :-1]
        net = W[-1].copy()
        W += M0
        return bnd, M0, W, net

    # ------------------------------------------------------------------ #
    # Best-only mode (the engine's refine stage)
    # ------------------------------------------------------------------ #
    def _sweep_best_only(self, uy, xs, num_cells, left, right, delta,
                         event_h):
        num_hlines = len(uy)
        best_value = np.empty(num_hlines)
        V0 = np.zeros(num_cells)
        for t0, t1, e0, e1 in self._chunks(num_hlines, event_h):
            bnd, _, W, net = self._chunk_offsets(
                V0, num_cells, t0, t1, e0, e1, left, right, delta, event_h)
            arg = W.argmax(axis=1)
            best_value[t0:t1] = W[np.arange(t1 - t0), arg]
            V0 += np.repeat(net, np.diff(bnd))

        t_best = int(np.argmax(best_value))
        weight = float(best_value[t_best])
        y1 = float(uy[t_best])
        y2 = float(uy[t_best + 1]) if t_best + 1 < num_hlines else math.inf

        # Reconstruct the winning h-line's profile once to recover the
        # leftmost maximal run (the x-extent of the best strip).
        count = int(np.searchsorted(event_h, t_best, side="right"))
        G = np.zeros(num_cells + 1)
        np.add.at(G, left[:count], delta[:count])
        np.add.at(G, right[:count], -delta[:count])
        V = np.cumsum(G[:num_cells])
        j = int(np.argmax(V))
        threshold = weight - _RUN_TOLERANCE * max(1.0, abs(weight))
        tail_below = V[j + 1:] < threshold
        if tail_below.size and tail_below.any():
            run_end = j + int(np.argmax(tail_below))
        else:
            run_end = num_cells - 1
        best = BestStrip(weight=weight, x1=float(xs[j]),
                         x2=float(xs[run_end + 1]), y1=y1, y2=y2)
        return [], best

    # ------------------------------------------------------------------ #
    # Full slab-file mode (ExactMaxRS leaves, MaxkRS)
    # ------------------------------------------------------------------ #
    def _sweep_records(self, uy, xs, num_cells, left, right, delta, event_h):
        num_hlines = len(uy)
        out_value = np.empty(num_hlines)
        out_cell = np.empty(num_hlines, dtype=np.int64)
        out_run = np.empty(num_hlines, dtype=np.int64)
        V0 = np.zeros(num_cells)

        for t0, t1, e0, e1 in self._chunks(num_hlines, event_h):
            bnd, M0, W, net = self._chunk_offsets(
                V0, num_cells, t0, t1, e0, e1, left, right, delta, event_h)
            Mn0 = np.minimum.reduceat(V0, bnd[:-1])
            rows = np.arange(t1 - t0)
            s_star = W.argmax(axis=1)
            m = W[rows, s_star]
            thr = m - _RUN_TOLERANCE * np.maximum(1.0, np.abs(m))

            # Leftmost argmax cell (A0) and end of its run of exactly-equal
            # cells (B0), per segment actually attaining a row maximum.
            need = np.unique(s_star)
            seg_a = bnd[need]
            seg_len = bnd[need + 1] - seg_a
            offsets = np.concatenate(([0], np.cumsum(seg_len)))
            cat = (np.arange(offsets[-1])
                   + np.repeat(seg_a - offsets[:-1], seg_len))
            vals = V0[cat]
            seg_pos = np.repeat(np.arange(len(need)), seg_len)
            is_max = vals == M0[need][seg_pos]
            scores = np.where(is_max, cat, num_cells)
            A0 = np.minimum.reduceat(scores, offsets[:-1])
            scores = np.where(is_max | (cat <= A0[seg_pos]), num_cells, cat)
            B0 = np.minimum.reduceat(scores, offsets[:-1])

            pos = np.searchsorted(need, s_star)
            j_star = A0[pos]
            seg_end = bnd[s_star + 1]
            plateau_end = np.minimum(B0[pos], seg_end)
            # Delta of the attaining segment, recovered from W = M0 + Delta.
            thr0 = thr - (m - M0[s_star])

            run = np.empty(t1 - t0, dtype=np.int64)
            in_seg = plateau_end < seg_end
            probe = np.where(in_seg, plateau_end, 0)
            breaks = in_seg & (V0[probe] < thr0)
            run[breaks] = plateau_end[breaks] - 1

            hard = np.flatnonzero(~breaks)
            if hard.size:
                self._resolve_hard_runs(
                    run, hard, V0, Mn0, M0, W, bnd, s_star, seg_end,
                    plateau_end, in_seg, thr, thr0, num_cells)

            out_value[t0:t1] = m
            out_cell[t0:t1] = j_star
            out_run[t0:t1] = run
            V0 += np.repeat(net, np.diff(bnd))

        x1 = xs[out_cell]
        x2 = xs[out_run + 1]
        records: List[Tuple[float, ...]] = list(zip(
            uy.tolist(), x1.tolist(), x2.tolist(), out_value.tolist()))
        i = int(np.argmax(out_value))
        y2 = float(uy[i + 1]) if i + 1 < num_hlines else math.inf
        best = BestStrip(weight=float(out_value[i]), x1=float(x1[i]),
                         x2=float(x2[i]), y1=float(uy[i]), y2=y2)
        return records, best

    @staticmethod
    def _resolve_hard_runs(run, hard, V0, Mn0, M0, W, bnd, s_star, seg_end,
                           plateau_end, in_seg, thr, thr0, num_cells):
        """Finish the maximal runs that the vectorised fast path could not.

        Two cases land here: runs whose plateau reaches the end of the
        attaining chunk segment (they may continue into later segments), and
        the rare floating-point case where the next cell differs from the
        maximum by less than the run tolerance.  Work per h-line is a couple
        of small scans, and only a minority of h-lines take this path.
        """
        num_segments = len(bnd) - 1
        delta_h = W[hard] - M0[None, :]
        seg_min = Mn0[None, :] + delta_h
        candidates = ((seg_min < thr[hard, None])
                      & (np.arange(num_segments)[None, :] > s_star[hard, None]))
        has_break = candidates.any(axis=1)
        break_seg = candidates.argmax(axis=1)
        for i, t in enumerate(hard):
            if in_seg[t]:
                # Tolerance case: scan the rest of the attaining segment
                # with the exact rule of the reference tree.
                a, b = plateau_end[t], seg_end[t]
                hit = np.nonzero(V0[a:b] < thr0[t])[0]
                if hit.size:
                    run[t] = a + hit[0] - 1
                    continue
            if not has_break[i]:
                run[t] = num_cells - 1
                continue
            s = break_seg[i]
            a, b = bnd[s], bnd[s + 1]
            hit = np.nonzero(V0[a:b] < thr[t] - delta_h[i, s])[0]
            run[t] = a + hit[0] - 1 if hit.size else b - 1

"""Tracking of the best strip seen during a sweep.

Both the in-memory plane sweep and ``MergeSweep`` emit one max-interval tuple
per h-line; the global answer is the emitted tuple with the largest sum, and
the optimal *region* additionally needs the y-coordinate of the *next* emitted
tuple (the strip extends from the best tuple's h-line up to the following
h-line).  :class:`BestStripTracker` performs this bookkeeping incrementally so
no second pass over the output slab-file is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.result import MaxRegion

__all__ = ["BestStrip", "BestStripTracker"]


@dataclass(frozen=True, slots=True)
class BestStrip:
    """The best (maximum location-weight) strip found by a sweep.

    Attributes
    ----------
    weight:
        The maximum location-weight.
    x1, x2:
        The x-range of the max-interval in the best strip.
    y1, y2:
        The strip's vertical extent: from the h-line that emitted the best
        tuple to the next h-line (``+inf`` when the best tuple was the last).
    """

    weight: float
    x1: float
    x2: float
    y1: float
    y2: float

    def to_region(self) -> MaxRegion:
        """Convert to the public :class:`~repro.core.result.MaxRegion`."""
        return MaxRegion(x1=self.x1, y1=self.y1, x2=self.x2, y2=self.y2,
                         weight=self.weight)

    @staticmethod
    def empty(x1: float = -math.inf, x2: float = math.inf) -> "BestStrip":
        """The answer for an empty input: weight 0 everywhere."""
        return BestStrip(weight=0.0, x1=x1, x2=x2, y1=-math.inf, y2=math.inf)


class BestStripTracker:
    """Incrementally track the best emitted tuple and its closing h-line.

    Feed every emitted tuple in y-order through :meth:`observe`; call
    :meth:`finish` once after the sweep.  The tracker handles the fencepost:
    a tuple's strip is closed by the y of the *next* tuple, and the last
    tuple's strip extends to ``+inf``.
    """

    def __init__(self) -> None:
        self._pending: Optional[Tuple[float, float, float, float]] = None
        self._best: Optional[BestStrip] = None

    def observe(self, y: float, x1: float, x2: float, weight: float) -> None:
        """Report the tuple emitted at h-line ``y``."""
        self._close_pending(y)
        self._pending = (y, x1, x2, weight)

    def finish(self) -> None:
        """Close the final strip (call exactly once, after the last tuple)."""
        self._close_pending(math.inf)
        self._pending = None

    @property
    def best(self) -> BestStrip:
        """The best strip observed so far (weight 0 everywhere when none)."""
        if self._best is None:
            return BestStrip.empty()
        return self._best

    def _close_pending(self, closing_y: float) -> None:
        if self._pending is None:
            return
        y, x1, x2, weight = self._pending
        if self._best is None or weight > self._best.weight:
            self._best = BestStrip(weight=weight, x1=x1, x2=x2, y1=y, y2=closing_y)

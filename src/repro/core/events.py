"""Sweep-line events over the dual rectangles.

All sweep-based algorithms in the reproduction (the in-memory plane sweep, the
externalized baselines, and the division phase of ExactMaxRS) operate on the
same event representation: each dual rectangle contributes a *bottom* event at
its lower edge (the rectangle starts intersecting the sweep line) and a *top*
event at its upper edge (it stops).  An event carries the rectangle's x-range
and weight, so a y-sorted event file is a complete, self-contained description
of the rectangle set -- this is the record format the ExactMaxRS recursion
passes down to sub-problems.

On disk an event is the record ``(y, kind, x1, x2, weight)`` with ``kind``
:data:`~repro.em.codecs.EVENT_BOTTOM` (+1) or :data:`~repro.em.codecs.EVENT_TOP`
(-1), stored through :data:`repro.em.codecs.EVENT_CODEC`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.em.codecs import EVENT_BOTTOM, EVENT_TOP
from repro.errors import GeometryError
from repro.geometry import Rect

__all__ = ["SweepEvent", "rect_to_events", "events_sort_key"]


@dataclass(frozen=True, slots=True)
class SweepEvent:
    """One sweep-line event: a horizontal edge of a weighted rectangle.

    Parameters
    ----------
    y:
        The y-coordinate of the edge.
    kind:
        ``+1`` for a bottom edge (rectangle insertion), ``-1`` for a top edge
        (rectangle deletion).
    x1, x2:
        The x-range of the rectangle (``x1 <= x2``).
    weight:
        The rectangle's weight (the weight of the originating object).
    """

    y: float
    kind: float
    x1: float
    x2: float
    weight: float

    def __post_init__(self) -> None:
        if self.kind not in (EVENT_BOTTOM, EVENT_TOP):
            raise GeometryError(f"invalid event kind {self.kind}")
        if self.x2 < self.x1:
            raise GeometryError(f"event has inverted x-range [{self.x1}, {self.x2}]")

    @property
    def is_bottom(self) -> bool:
        """``True`` for a rectangle-insertion (bottom edge) event."""
        return self.kind == EVENT_BOTTOM

    @property
    def is_top(self) -> bool:
        """``True`` for a rectangle-deletion (top edge) event."""
        return self.kind == EVENT_TOP

    def to_record(self) -> Tuple[float, float, float, float, float]:
        """Return the flat disk record ``(y, kind, x1, x2, weight)``."""
        return (self.y, self.kind, self.x1, self.x2, self.weight)

    @staticmethod
    def from_record(record: Tuple[float, ...]) -> "SweepEvent":
        """Rebuild a :class:`SweepEvent` from its disk record."""
        y, kind, x1, x2, weight = record
        return SweepEvent(y=y, kind=kind, x1=x1, x2=x2, weight=weight)


def rect_to_events(rect: Rect, weight: float) -> Tuple[SweepEvent, SweepEvent]:
    """Return the (bottom, top) event pair of a weighted rectangle."""
    bottom = SweepEvent(y=rect.y1, kind=EVENT_BOTTOM, x1=rect.x1, x2=rect.x2, weight=weight)
    top = SweepEvent(y=rect.y2, kind=EVENT_TOP, x1=rect.x1, x2=rect.x2, weight=weight)
    return bottom, top


def events_sort_key(record: Tuple[float, ...]) -> Tuple[float, ...]:
    """Sort key placing event records in sweep order.

    Events are ordered primarily by y.  Ties are broken by the remaining
    fields purely for determinism; the algorithms process *all* events sharing
    a y-coordinate before emitting output for the strip above it, so any
    within-y order is correct.
    """
    return record


def iter_events(records: Iterable[Tuple[float, ...]]) -> Iterator[SweepEvent]:
    """Decode an iterable of event records into :class:`SweepEvent` objects."""
    for record in records:
        yield SweepEvent.from_record(record)


def events_to_records(events: Iterable[SweepEvent]) -> List[Tuple[float, ...]]:
    """Encode events into flat records ready to be written to an event file."""
    return [event.to_record() for event in events]

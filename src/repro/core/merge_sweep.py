"""MergeSweep -- Algorithm 1 of the paper.

``MergeSweep`` combines the slab-files of ``m`` adjacent sub-slabs, together
with the rectangles that span entire sub-slabs, into the slab-file of their
union.  It sweeps a horizontal line upward across all ``m + 1`` input streams
simultaneously:

* a *spanning* rectangle crossing sub-slab ``i`` raises (bottom edge) or
  lowers (top edge) ``upSum[i]``, the extra weight every point of sub-slab
  ``i`` receives from rectangles that were removed from its sub-problem;
* a max-interval tuple arriving from sub-slab ``i``'s slab-file replaces the
  sub-slab's current best interval and base sum;
* after all edges and tuples sharing one y-coordinate have been applied, the
  sub-slab with the largest *effective* sum (base sum + ``upSum``) provides
  the output tuple for the strip above that h-line; consecutive sub-slabs
  whose intervals touch and tie for the maximum are merged into one longer
  max-interval (the paper's ``GetMaxInterval``).

The sub-slab maxima are kept in a
:class:`~repro.core.segment_tree.MaxAddSegmentTree` (point updates for tuples,
range updates for spanning edges), so the CPU work per input record is
``O(log m)`` while the I/O cost is one sequential pass over the inputs plus
one sequential write of the output -- the ``O(K/B)`` of Lemma 3.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right
from typing import List, Sequence, Tuple

from repro.core.beststrip import BestStrip, BestStripTracker
from repro.core.segment_tree import MaxAddSegmentTree
from repro.core.slab import Slab
from repro.em.codecs import EVENT_BOTTOM, MAX_INTERVAL_CODEC
from repro.em.context import EMContext
from repro.em.record_file import RecordFile
from repro.errors import AlgorithmError

__all__ = ["merge_sweep"]

#: Heap tag identifying entries that come from a slab-file stream.
_TAG_TUPLE = 0
#: Heap tag identifying entries that come from the spanning-event stream.
_TAG_SPANNING = 1


def merge_sweep(
    ctx: EMContext,
    sub_slabs: Sequence[Slab],
    slab_files: Sequence[RecordFile],
    spanning_file: RecordFile,
    *,
    name: str = "merged",
) -> Tuple[RecordFile, BestStrip]:
    """Merge ``m`` slab-files and a spanning-event file into one slab-file.

    Parameters
    ----------
    ctx:
        External-memory context (output file is created on its disk).
    sub_slabs:
        The ``m`` sub-slabs, left to right; their extents define the initial
        (weight-0) max-intervals and the ``upSum`` ranges of spanning edges.
    slab_files:
        The slab-file of each sub-slab, y-sorted, aligned with ``sub_slabs``.
    spanning_file:
        y-sorted sweep events of the rectangles spanning whole sub-slabs.
    name:
        Name for the output slab-file.

    Returns
    -------
    (output, best):
        The merged slab-file (y-sorted) and the best strip it contains.
    """
    m = len(sub_slabs)
    if m == 0:
        raise AlgorithmError("MergeSweep needs at least one sub-slab")
    if len(slab_files) != m:
        raise AlgorithmError(
            f"expected {m} slab-files, got {len(slab_files)}"
        )

    tree = MaxAddSegmentTree(m)       # effective sums (base + upSum)
    upsum = MaxAddSegmentTree(m)      # upSum alone (range add / point query)
    base_interval: List[Tuple[float, float]] = [(s.lo, s.hi) for s in sub_slabs]
    slab_los = [s.lo for s in sub_slabs]
    slab_his = [s.hi for s in sub_slabs]

    readers = [f.reader() for f in slab_files]
    spanning_reader = spanning_file.reader()

    # Heap entries: (y, tag, stream index, record).  Stream indices are unique
    # per stream so records never get compared.
    heap: List[Tuple[float, int, int, Tuple[float, ...]]] = []
    for idx, reader in enumerate(readers):
        record = next(reader, None)
        if record is not None:
            heap.append((record[0], _TAG_TUPLE, idx, record))
    spanning_record = next(spanning_reader, None)
    if spanning_record is not None:
        heap.append((spanning_record[0], _TAG_SPANNING, m, spanning_record))
    heapq.heapify(heap)

    output = ctx.create_file(MAX_INTERVAL_CODEC, name=name)
    tracker = BestStripTracker()

    with output.writer() as writer:
        while heap:
            y = heap[0][0]
            while heap and heap[0][0] == y:
                _, tag, idx, record = heapq.heappop(heap)
                if tag == _TAG_SPANNING:
                    _apply_spanning(record, slab_los, slab_his, tree, upsum)
                    nxt = next(spanning_reader, None)
                    if nxt is not None:
                        heapq.heappush(heap, (nxt[0], _TAG_SPANNING, m, nxt))
                else:
                    _apply_tuple(record, idx, tree, upsum, base_interval)
                    nxt = next(readers[idx], None)
                    if nxt is not None:
                        heapq.heappush(heap, (nxt[0], _TAG_TUPLE, idx, nxt))
            x_lo, x_hi, best_value = _current_max_interval(tree, base_interval, m)
            writer.append((y, x_lo, x_hi, best_value))
            tracker.observe(y, x_lo, x_hi, best_value)

    tracker.finish()
    return output, tracker.best


# ---------------------------------------------------------------------- #
# Sweep steps
# ---------------------------------------------------------------------- #
def _apply_spanning(record: Tuple[float, ...], slab_los: Sequence[float],
                    slab_his: Sequence[float], tree: MaxAddSegmentTree,
                    upsum: MaxAddSegmentTree) -> None:
    """Apply one spanning-rectangle edge: adjust ``upSum`` of the spanned slabs."""
    _, kind, x1, x2, weight = record
    first = bisect_left(slab_los, x1)
    last = bisect_right(slab_his, x2) - 1
    if first > last:
        return
    delta = weight if kind == EVENT_BOTTOM else -weight
    tree.range_add(first, last, delta)
    upsum.range_add(first, last, delta)


def _apply_tuple(record: Tuple[float, ...], slab_index: int,
                 tree: MaxAddSegmentTree, upsum: MaxAddSegmentTree,
                 base_interval: List[Tuple[float, float]]) -> None:
    """Apply one slab-file tuple: replace the sub-slab's base max-interval."""
    _, x1, x2, base_sum = record
    effective_new = base_sum + upsum.point_value(slab_index)
    effective_old = tree.point_value(slab_index)
    tree.range_add(slab_index, slab_index, effective_new - effective_old)
    base_interval[slab_index] = (x1, x2)


def _current_max_interval(tree: MaxAddSegmentTree,
                          base_interval: Sequence[Tuple[float, float]],
                          m: int) -> Tuple[float, float, float]:
    """Return the merged max-interval and its sum for the current strip.

    Implements ``GetMaxInterval``: the winning sub-slab's interval is extended
    over adjacent sub-slabs whose intervals touch it and whose effective sums
    tie with the maximum.
    """
    best_value = tree.global_max()
    winner = tree.argmax_leftmost()
    x_lo, x_hi = base_interval[winner]
    j = winner - 1
    while j >= 0 and base_interval[j][1] == x_lo and \
            _ties(tree.point_value(j), best_value):
        x_lo = base_interval[j][0]
        j -= 1
    j = winner + 1
    while j < m and base_interval[j][0] == x_hi and \
            _ties(tree.point_value(j), best_value):
        x_hi = base_interval[j][1]
        j += 1
    return x_lo, x_hi, best_value


def _ties(value: float, best: float) -> bool:
    """Floating-point-tolerant equality used when merging tied sub-slabs."""
    return math.isclose(value, best, rel_tol=1e-12, abs_tol=1e-12)

"""Slabs and the division phase of ExactMaxRS (Section 5.2.1).

ExactMaxRS recursively divides the data space into ``m`` vertical *slabs*,
each receiving roughly the same number of rectangle edges.  A rectangle whose
x-extent crosses slab boundaries is split: the pieces containing its original
vertical edges are passed down to the corresponding sub-problems, while the
middle piece -- which *spans* one or more slabs entirely -- is set aside in a
separate spanning file and only re-enters the computation during the merge
(as the ``upSum`` contribution of Algorithm 1).  Removing spanning pieces is
what guarantees the recursion terminates (Lemma 1).

This module implements the three steps of the division phase over the
disk-resident event representation:

1. :func:`collect_edge_xs` -- one linear scan gathering the vertical-edge
   x-coordinates that lie strictly inside the slab;
2. :func:`choose_boundaries` -- picking ``m - 1`` boundary x-coordinates as
   quantiles of those edges, so each sub-slab receives roughly ``2K/m`` edges;
3. :func:`partition_event_file` -- one linear scan splitting every event into
   its per-slab pieces and its spanning piece, writing ``m`` sub-slab event
   files plus one spanning-event file, all of which stay sorted by y because
   the input is scanned in y order.

Implementation note (documented in DESIGN.md): boundary selection materialises
the edge x-coordinates of the current sub-problem in process memory to take
exact quantiles.  The I/O charged for the step -- a single linear scan -- is
identical to a sort-order-maintaining implementation, and I/O is the only
quantity the experiments measure.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.em.codecs import EVENT_CODEC
from repro.em.context import EMContext
from repro.em.record_file import RecordFile, RecordWriter
from repro.errors import AlgorithmError
from repro.geometry import Interval

__all__ = [
    "Slab",
    "collect_edge_xs",
    "choose_boundaries",
    "make_subslabs",
    "partition_event_file",
    "spanned_slab_range",
]


@dataclass(frozen=True, slots=True)
class Slab:
    """A vertical slab of the data space.

    Attributes
    ----------
    index:
        Position of the slab among its siblings (0-based, left to right).
    lo, hi:
        The x-extent ``[lo, hi]``; the root slab is ``(-inf, +inf)``.
    """

    index: int
    lo: float
    hi: float

    @property
    def x_range(self) -> Interval:
        """The slab's x-extent as an :class:`~repro.geometry.Interval`."""
        return Interval(self.lo, self.hi)

    @staticmethod
    def root() -> "Slab":
        """The slab covering the entire data space."""
        return Slab(index=0, lo=-math.inf, hi=math.inf)


def collect_edge_xs(event_file: RecordFile, slab: Slab) -> List[float]:
    """Return the vertical-edge x-coordinates strictly inside ``slab``.

    Both edges of every event's x-range are collected (with multiplicity), so
    quantiles over the returned list balance the *edge* counts across
    sub-slabs exactly as in the proof of Lemma 1.  Costs one linear read of
    the event file.
    """
    lo, hi = slab.lo, slab.hi
    edges: List[float] = []
    for _, _, x1, x2, _ in event_file.reader():
        if lo < x1 < hi:
            edges.append(x1)
        if lo < x2 < hi:
            edges.append(x2)
    return edges


def choose_boundaries(edge_xs: Sequence[float], fanout: int) -> List[float]:
    """Pick up to ``fanout - 1`` slab boundaries as quantiles of ``edge_xs``.

    Duplicate quantiles (caused by repeated coordinates) are collapsed, so the
    returned list may be shorter than ``fanout - 1``; it may even be empty
    when every edge shares one x-coordinate, in which case the caller falls
    back to the in-memory base case.
    """
    if fanout < 2:
        raise AlgorithmError(f"slab fan-out must be at least 2, got {fanout}")
    if not edge_xs:
        return []
    ordered = sorted(edge_xs)
    count = len(ordered)
    boundaries: List[float] = []
    for k in range(1, fanout):
        position = (k * count) // fanout
        if position <= 0 or position >= count:
            continue
        candidate = ordered[position]
        if candidate <= ordered[0]:
            # A boundary at (or below) the smallest edge cannot separate
            # anything: skip it so fully degenerate inputs (all edges equal)
            # fall back to the in-memory base case instead of looping.
            continue
        if not boundaries or candidate > boundaries[-1]:
            boundaries.append(candidate)
    return boundaries


def make_subslabs(slab: Slab, boundaries: Sequence[float]) -> List[Slab]:
    """Build the sub-slabs of ``slab`` delimited by ``boundaries``."""
    edges = [slab.lo, *boundaries, slab.hi]
    slabs = []
    for i in range(len(edges) - 1):
        if edges[i] >= edges[i + 1]:
            raise AlgorithmError(
                f"slab boundaries must be strictly increasing inside ({slab.lo}, {slab.hi})"
            )
        slabs.append(Slab(index=i, lo=edges[i], hi=edges[i + 1]))
    return slabs


def partition_event_file(
    ctx: EMContext,
    event_file: RecordFile,
    slab: Slab,
    boundaries: Sequence[float],
    *,
    name_prefix: str = "slab",
) -> Tuple[List[RecordFile], RecordFile, List[Slab]]:
    """Split a y-sorted event file into per-sub-slab files plus a spanning file.

    Returns ``(sub_files, spanning_file, sub_slabs)``.  Every output file is
    sorted by y because the input is consumed in y order and records are only
    appended.  The input file is left untouched (the caller deletes it).

    Costs one linear read of the input plus one linear write of the outputs
    (whose total size is at most twice the input: each event splits into at
    most one left piece, one right piece and one spanning piece, and the left
    and right pieces together account for the event's two original edges).
    """
    if not boundaries:
        raise AlgorithmError("cannot partition without boundaries")
    sub_slabs = make_subslabs(slab, boundaries)
    fanout = len(sub_slabs)
    sub_files = [
        ctx.create_file(EVENT_CODEC, name=f"{name_prefix}-{i}-events")
        for i in range(fanout)
    ]
    spanning_file = ctx.create_file(EVENT_CODEC, name=f"{name_prefix}-spanning")
    writers: List[RecordWriter] = [f.writer() for f in sub_files]
    spanning_writer = spanning_file.writer()
    bs = list(boundaries)
    slab_lo, slab_hi = slab.lo, slab.hi

    try:
        for record in event_file.reader():
            y, kind, x1, x2, weight = record
            a = max(x1, slab_lo)
            b = min(x2, slab_hi)
            if a >= b:
                continue
            i = bisect_right(bs, a)
            j = bisect_left(bs, b)
            lo_i = bs[i - 1] if i > 0 else slab_lo
            hi_i = bs[i] if i < len(bs) else slab_hi
            if i == j:
                if a <= lo_i and b >= hi_i:
                    spanning_writer.append((y, kind, lo_i, hi_i, weight))
                else:
                    writers[i].append((y, kind, a, b, weight))
                continue
            lo_j = bs[j - 1] if j > 0 else slab_lo
            hi_j = bs[j] if j < len(bs) else slab_hi
            # Left piece: keeps the original left edge when it is strictly
            # inside sub-slab i; otherwise sub-slab i is fully spanned.
            if a > lo_i:
                writers[i].append((y, kind, a, hi_i, weight))
                span_lo = hi_i
            else:
                span_lo = lo_i
            # Right piece, symmetrically.
            if b < hi_j:
                writers[j].append((y, kind, lo_j, b, weight))
                span_hi = lo_j
            else:
                span_hi = hi_j
            if span_lo < span_hi:
                spanning_writer.append((y, kind, span_lo, span_hi, weight))
    finally:
        for writer in writers:
            writer.close()
        spanning_writer.close()

    return sub_files, spanning_file, sub_slabs


def spanned_slab_range(sub_slabs: Sequence[Slab], x1: float,
                       x2: float) -> Tuple[int, int]:
    """Return the inclusive range ``(first, last)`` of sub-slab indices fully
    spanned by the x-range ``[x1, x2]``, or ``(1, 0)`` (an empty range) when no
    sub-slab is fully covered.

    Used by ``MergeSweep`` to translate a spanning rectangle into the slabs
    whose ``upSum`` it affects.
    """
    los = [s.lo for s in sub_slabs]
    his = [s.hi for s in sub_slabs]
    first = bisect_left(los, x1)
    last = bisect_right(his, x2) - 1
    if first > last:
        return 1, 0
    return first, last

"""Result types returned by the MaxRS / MaxCRS solvers.

A MaxRS answer is more than a single point: the set of optimal centres forms a
region (the *max-region* of the transformed problem, Definition 4).  The
solvers therefore report the full region together with one representative
optimal location, the achieved weight, and -- because the whole point of the
paper is I/O behaviour -- the number of block transfers the computation cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.em.counters import IOSnapshot
from repro.geometry import Point, Rect

__all__ = ["MaxRegion", "MaxRSResult", "MaxCRSResult"]


@dataclass(frozen=True, slots=True)
class MaxRegion:
    """A region of optimal rectangle centres and the weight achieved there.

    The region may be unbounded (e.g. an empty dataset makes every placement
    optimal with weight zero), so the bounds are plain floats that may be
    infinite rather than a :class:`~repro.geometry.Rect`.
    """

    x1: float
    y1: float
    x2: float
    y2: float
    weight: float

    @property
    def is_bounded(self) -> bool:
        """``True`` when all four region bounds are finite."""
        return all(math.isfinite(v) for v in (self.x1, self.y1, self.x2, self.y2))

    def as_rect(self) -> Rect:
        """Return the region as a :class:`~repro.geometry.Rect`.

        Infinite bounds are preserved; callers that need a drawable rectangle
        should first check :attr:`is_bounded`.
        """
        return Rect(self.x1, self.y1, self.x2, self.y2)

    def representative_point(self) -> Point:
        """Return one optimal location inside the region.

        The centre is used when the region is bounded; for unbounded regions a
        finite coordinate is chosen on each axis (the midpoint of the finite
        part, or 0 when both bounds are infinite).
        """
        return Point(_finite_mid(self.x1, self.x2), _finite_mid(self.y1, self.y2))


def _finite_mid(lo: float, hi: float) -> float:
    """Return a finite representative coordinate of the range ``[lo, hi]``."""
    lo_finite = math.isfinite(lo)
    hi_finite = math.isfinite(hi)
    if lo_finite and hi_finite:
        return (lo + hi) / 2.0
    if lo_finite:
        return lo
    if hi_finite:
        return hi
    return 0.0


@dataclass(frozen=True, slots=True)
class MaxRSResult:
    """The answer to a MaxRS instance.

    Attributes
    ----------
    location:
        One optimal centre for the query rectangle.
    region:
        The full max-region (every point of it is an optimal centre).
    total_weight:
        The maximal covered weight (the objective value).
    io:
        Block transfers performed by the computation, or ``None`` when the
        solver ran purely in memory.
    recursion_levels:
        Depth of the ExactMaxRS recursion (0 when the input fit in memory).
    leaf_count:
        Number of leaf sub-problems solved by the in-memory plane sweep.
    gap:
        Certified relative optimality gap of a bounded-error answer: the true
        optimum is at most ``total_weight * (1 + gap)``.  ``0.0`` when the
        bounded-error path happened to finish exactly; ``None`` for answers
        from the exact path.
    cost:
        Per-query cost ledger attached by the serving engine
        (:meth:`repro.service.MaxRSEngine.query`): a plain JSON-ready dict of
        what answering cost -- wall/CPU seconds, swept vs pruned points,
        pyramid descent, cache outcome, shard fan-out, block I/O.  ``None``
        for answers from the bare solvers.  Excluded from equality so
        ledger-carrying answers compare bit-identical to plain ones.
    """

    location: Point
    region: MaxRegion
    total_weight: float
    io: Optional[IOSnapshot] = None
    recursion_levels: int = 0
    leaf_count: int = 1
    gap: Optional[float] = None
    cost: Optional[dict] = field(default=None, compare=False)


@dataclass(frozen=True, slots=True)
class MaxCRSResult:
    """The answer to a MaxCRS instance produced by ApproxMaxCRS.

    Attributes
    ----------
    location:
        The chosen circle centre (the best of the five candidate points).
    total_weight:
        The weight covered by the circle centred at :attr:`location`.
    candidates:
        The five candidate centres that were evaluated (p0 plus the four
        shifted points), in evaluation order.
    candidate_weights:
        The covered weight at each candidate, aligned with :attr:`candidates`.
    rectangle_result:
        The underlying ExactMaxRS answer on the MBRs, kept for diagnostics.
    io:
        Block transfers performed by the whole computation, or ``None``.
    gap:
        Certified relative optimality gap of a bounded-error answer (relative
        to the best *rectangle* weight the circle heuristic starts from), or
        ``None`` for answers from the exact path.
    cost:
        Per-query cost ledger attached by the serving engine (see
        :class:`MaxRSResult`); ``None`` for answers from the bare solvers.
        Excluded from equality.
    """

    location: Point
    total_weight: float
    candidates: tuple = field(default_factory=tuple)
    candidate_weights: tuple = field(default_factory=tuple)
    rectangle_result: Optional[MaxRSResult] = None
    io: Optional[IOSnapshot] = None
    gap: Optional[float] = None
    cost: Optional[dict] = field(default=None, compare=False)

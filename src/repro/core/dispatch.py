"""Solver dispatch: one entry point for "solve this point set exactly".

Historically the strategy choice (in-memory plane sweep vs. the external
ExactMaxRS recursion) lived inside :class:`repro.api.MaxRSSolver`; with the
resident query service (:mod:`repro.service`) a second caller needed exactly
the same decision, so it is factored here.  Both the public API façade and
:class:`~repro.service.engine.MaxRSEngine` call these functions, which keeps
the two paths bit-identical by construction:

* :func:`solve_point_set` -- plain MaxRS;
* :func:`solve_point_set_top_k` -- the MaxkRS extension (``k`` best
  vertically-disjoint placements);
* :func:`fits_in_memory` -- the paper's base-case test (``2N <= M`` event
  records), exposed so callers can predict which strategy will run.

The dispatch is controlled by two flags:

``force_external``
    Always run the external-memory algorithm (used by experiments that want
    the I/O accounting even for small inputs).
``force_in_memory``
    Always run the in-memory plane sweep, regardless of the configured buffer
    size.  The resident service uses this: its datasets are memory-resident by
    design, so simulating disk I/O for them would only add cost.

Orthogonally to the strategy choice, ``backend`` selects the *execution
backend* of the in-memory sweep itself (:mod:`repro.core.backends`): the
pure-Python reference tree, the numpy-vectorised sweep, or ``None``/"auto"
for the size-based rule.  The external path threads the same selection into
the ExactMaxRS base case, so every sweep in the process honours one knob.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import obs
from repro.core.backends import BackendSpec, resolve_backend
from repro.core.exact_maxrs import (
    ExactMaxRS,
    records_to_strips,
    select_disjoint_strips,
)
from repro.core.plane_sweep import solve_in_memory
from repro.core.result import MaxRSResult
from repro.core.transform import objects_to_event_records
from repro.em.codecs import EVENT_CODEC
from repro.em.config import EMConfig
from repro.em.context import EMContext
from repro.errors import ConfigurationError
from repro.geometry import Interval, WeightedPoint

__all__ = ["fits_in_memory", "solve_point_set", "solve_point_set_top_k"]


def fits_in_memory(num_objects: int, config: EMConfig) -> bool:
    """Return whether ``num_objects`` objects take the in-memory fast path.

    Mirrors the base case of Algorithm 2: the sweep needs the ``2N`` event
    records of the dual rectangles to fit in the configured buffer.
    """
    capacity = config.memory_capacity_records(EVENT_CODEC.record_size)
    return 2 * num_objects <= capacity


def solve_point_set(objects: Sequence[WeightedPoint], width: float,
                    height: float, *,
                    config: Optional[EMConfig] = None,
                    force_external: bool = False,
                    force_in_memory: bool = False,
                    backend: BackendSpec = None) -> MaxRSResult:
    """Solve a MaxRS instance, choosing the execution strategy automatically.

    Small inputs (per :func:`fits_in_memory`) are solved by the in-memory
    plane sweep; larger ones by the external-memory ExactMaxRS recursion on a
    fresh :class:`~repro.em.context.EMContext`.  ``backend`` selects the
    sweep execution backend for whichever path runs (see
    :mod:`repro.core.backends`).

    Raises
    ------
    ConfigurationError
        If the query rectangle is degenerate or both force flags are set.
    """
    config = _check_args(width, height, config, force_external, force_in_memory)
    in_memory = force_in_memory or (not force_external
                                    and fits_in_memory(len(objects), config))
    with obs.span("dispatch.solve", kind="maxrs", objects=len(objects),
                  strategy="in_memory" if in_memory else "external"):
        if in_memory:
            return solve_in_memory(objects, width, height, backend=backend)
        ctx = EMContext(config)
        return ExactMaxRS(ctx, width, height,
                          sweep_backend=backend).solve(objects)


def solve_point_set_top_k(objects: Sequence[WeightedPoint], width: float,
                          height: float, k: int, *,
                          config: Optional[EMConfig] = None,
                          force_external: bool = False,
                          force_in_memory: bool = False,
                          backend: BackendSpec = None) -> List[MaxRSResult]:
    """Solve a MaxkRS instance (``k`` best vertically-disjoint placements).

    Follows the same strategy choice as :func:`solve_point_set`; the in-memory
    path runs one plane sweep (on the backend selected by ``backend``) and
    selects the top strips directly from its slab-file tuples, with no
    simulated I/O.

    Raises
    ------
    ConfigurationError
        If ``k < 1``, the query rectangle is degenerate, or both force flags
        are set.
    """
    if k < 1:
        raise ConfigurationError(f"k must be at least 1, got {k}")
    config = _check_args(width, height, config, force_external, force_in_memory)
    in_memory = force_in_memory or (not force_external
                                    and fits_in_memory(len(objects), config))
    with obs.span("dispatch.solve", kind="maxkrs", objects=len(objects),
                  strategy="in_memory" if in_memory else "external"):
        if in_memory:
            records = objects_to_event_records(objects, width, height)
            sweep_backend = resolve_backend(backend, len(records))
            with obs.span("backend.sweep", backend=sweep_backend.name,
                          events=len(records)):
                tuples, _ = sweep_backend.sweep(records, Interval.full())
            chosen = select_disjoint_strips(records_to_strips(tuples), k)
            results: List[MaxRSResult] = []
            for strip in chosen:
                region = strip.to_region()
                results.append(MaxRSResult(
                    location=region.representative_point(),
                    region=region,
                    total_weight=strip.weight,
                    io=None,
                    recursion_levels=0,
                    leaf_count=1,
                ))
            return results
        ctx = EMContext(config)
        return ExactMaxRS(ctx, width, height,
                          sweep_backend=backend).solve_topk(objects, k)


def _check_args(width: float, height: float, config: Optional[EMConfig],
                force_external: bool, force_in_memory: bool) -> EMConfig:
    if width <= 0 or height <= 0:
        raise ConfigurationError(
            f"query rectangle must have positive extent, got {width} x {height}"
        )
    if force_external and force_in_memory:
        raise ConfigurationError(
            "force_external and force_in_memory are mutually exclusive"
        )
    return config if config is not None else EMConfig()

"""The paper's primary contribution: the ExactMaxRS machinery.

Layout of the package (bottom-up):

* :mod:`repro.core.transform` -- the dual transformation from objects to
  query-sized rectangles (Section 4).
* :mod:`repro.core.events` -- the sweep-event representation of rectangles
  used throughout the recursion.
* :mod:`repro.core.segment_tree` -- the lazy max/argmax segment tree shared by
  the plane sweep and MergeSweep.
* :mod:`repro.core.plane_sweep` -- the in-memory plane sweep, both the base
  case of the recursion and the exact reference solver.
* :mod:`repro.core.backends` -- pluggable execution backends for that sweep:
  the pure-Python reference tree and a numpy-vectorised implementation,
  selected explicitly or by event count.
* :mod:`repro.core.slab` -- slabs, boundary selection and the division phase.
* :mod:`repro.core.slabfile` / :mod:`repro.core.maxinterval` -- slab-files and
  their max-interval tuples (Definition 6).
* :mod:`repro.core.merge_sweep` -- Algorithm 1 (MergeSweep).
* :mod:`repro.core.exact_maxrs` -- Algorithm 2 (ExactMaxRS), the public
  external-memory solver, plus the MaxkRS extension.
* :mod:`repro.core.result` -- result value objects.
"""

from repro.core.backends import (
    SweepBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.core.beststrip import BestStrip, BestStripTracker
from repro.core.dispatch import (
    fits_in_memory,
    solve_point_set,
    solve_point_set_top_k,
)
from repro.core.events import SweepEvent, events_sort_key, rect_to_events
from repro.core.exact_maxrs import (
    ExactMaxRS,
    records_to_strips,
    select_disjoint_strips,
)
from repro.core.maxinterval import MaxInterval
from repro.core.merge_sweep import merge_sweep
from repro.core.plane_sweep import solve_in_memory, sweep_events
from repro.core.result import MaxCRSResult, MaxRegion, MaxRSResult
from repro.core.segment_tree import MaxAddSegmentTree
from repro.core.slab import (
    Slab,
    choose_boundaries,
    collect_edge_xs,
    make_subslabs,
    partition_event_file,
)
from repro.core.slabfile import (
    find_best_strip,
    iter_slab_file,
    read_slab_file,
    validate_slab_file_records,
    write_slab_file,
)
from repro.core.transform import (
    build_event_file,
    dual_rectangle,
    dual_rectangles,
    objects_file_to_event_file,
    objects_to_event_records,
    write_objects_file,
)

__all__ = [
    "BestStrip",
    "BestStripTracker",
    "ExactMaxRS",
    "SweepBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "MaxAddSegmentTree",
    "MaxCRSResult",
    "MaxInterval",
    "MaxRSResult",
    "MaxRegion",
    "Slab",
    "SweepEvent",
    "build_event_file",
    "choose_boundaries",
    "collect_edge_xs",
    "dual_rectangle",
    "dual_rectangles",
    "events_sort_key",
    "find_best_strip",
    "fits_in_memory",
    "iter_slab_file",
    "make_subslabs",
    "merge_sweep",
    "objects_file_to_event_file",
    "objects_to_event_records",
    "partition_event_file",
    "read_slab_file",
    "records_to_strips",
    "rect_to_events",
    "select_disjoint_strips",
    "solve_in_memory",
    "solve_point_set",
    "solve_point_set_top_k",
    "sweep_events",
    "validate_slab_file_records",
    "write_objects_file",
    "write_slab_file",
]

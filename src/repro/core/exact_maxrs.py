"""ExactMaxRS -- Algorithm 2 of the paper.

The first external-memory algorithm for the MaxRS problem.  Its structure is
the distribution-sweep paradigm:

1. **Transform** (Section 4): every object becomes a query-sized rectangle
   centred at the object; the MaxRS answer is the most overlapped region of
   these dual rectangles.  The rectangles are represented as a y-sorted file
   of sweep events (:mod:`repro.core.events`), produced by one linear pass
   plus one external sort.
2. **Divide** (Section 5.2.1): while the events of a sub-problem exceed the
   memory capacity ``M``, the sub-problem's slab is split into ``m = Θ(M/B)``
   sub-slabs receiving roughly the same number of rectangle edges.  Rectangle
   pieces spanning whole sub-slabs are set aside in a spanning file
   (:mod:`repro.core.slab`).
3. **Conquer**: a sub-problem that fits in memory is solved by the in-memory
   plane sweep (:mod:`repro.core.plane_sweep`), producing its slab-file.
4. **Merge** (Section 5.2.3): the ``m`` slab-files and the spanning file are
   combined by :func:`~repro.core.merge_sweep.merge_sweep` into the parent's
   slab-file, until a single slab-file for the whole data space remains.  The
   strip with the largest sum in that final slab-file is the max-region; any
   of its points is an optimal placement.

Total cost: ``O((N/B) log_{M/B}(N/B))`` I/Os (Theorem 2), dominated by the
initial sort and by one linear pass per recursion level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.backends import BackendSpec, resolve_backend
from repro.core.beststrip import BestStrip
from repro.core.events import events_sort_key
from repro.core.merge_sweep import merge_sweep
from repro.core.result import MaxRSResult
from repro.core.slab import (
    Slab,
    choose_boundaries,
    collect_edge_xs,
    partition_event_file,
)
from repro.core.transform import objects_file_to_event_file, write_objects_file
from repro.em.codecs import EVENT_CODEC, MAX_INTERVAL_CODEC
from repro.em.context import EMContext
from repro.em.external_sort import external_sort
from repro.em.record_file import RecordFile
from repro.errors import AlgorithmError, ConfigurationError
from repro.geometry import WeightedPoint

__all__ = ["ExactMaxRS", "records_to_strips", "select_disjoint_strips"]


class ExactMaxRS:
    """External-memory exact solver for the MaxRS problem.

    Parameters
    ----------
    ctx:
        The external-memory context (disk, buffer pool, I/O counters).
    width, height:
        The query rectangle size ``d1 x d2``.
    fanout:
        Number of sub-slabs ``m`` per division step.  Defaults to the
        EM-model value ``Θ(M/B)`` derived from the context's configuration;
        tests override it to force deep recursions on tiny inputs.
    memory_records:
        Number of event records considered to "fit in memory" (the base-case
        threshold ``M``).  Defaults to the buffer capacity for event records.
    max_depth:
        Hard recursion-depth safety limit; beyond it the in-memory sweep is
        used regardless of size.
    sweep_backend:
        Execution backend for the in-memory sweep at the leaves (a
        :class:`~repro.core.backends.SweepBackend`, a name, or ``None`` for
        the per-leaf size-based auto rule; see :mod:`repro.core.backends`).

    Examples
    --------
    >>> from repro.em import EMContext
    >>> ctx = EMContext()
    >>> solver = ExactMaxRS(ctx, width=2.0, height=2.0)
    >>> objs = [WeightedPoint(0, 0), WeightedPoint(0.5, 0.5), WeightedPoint(9, 9)]
    >>> solver.solve(objs).total_weight
    2.0
    """

    def __init__(self, ctx: EMContext, width: float, height: float, *,
                 fanout: Optional[int] = None,
                 memory_records: Optional[int] = None,
                 max_depth: int = 64,
                 sweep_backend: BackendSpec = None) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"query rectangle must have positive extent, got {width} x {height}"
            )
        self.ctx = ctx
        self.width = width
        self.height = height
        self.fanout = fanout if fanout is not None else ctx.merge_fanout()
        if self.fanout < 2:
            raise ConfigurationError(f"fan-out must be at least 2, got {self.fanout}")
        if memory_records is not None:
            self.memory_records = memory_records
        else:
            self.memory_records = ctx.memory_capacity_records(EVENT_CODEC.record_size)
        if self.memory_records < 2:
            raise ConfigurationError(
                f"memory must hold at least two event records, got {self.memory_records}"
            )
        self.max_depth = max_depth
        self.sweep_backend = sweep_backend
        self._leaf_count = 0
        self._deepest_level = 0

    def _sweep(self, records: Sequence[Tuple[float, ...]],
               x_range) -> Tuple[List[Tuple[float, ...]], BestStrip]:
        """Run the in-memory sweep on the configured (or auto) backend."""
        backend = resolve_backend(self.sweep_backend, len(records))
        return backend.sweep(records, x_range)

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def solve(self, objects: Sequence[WeightedPoint]) -> MaxRSResult:
        """Solve MaxRS for an in-memory list of objects.

        The objects are first written to the simulated disk so the run is
        charged the same I/O as a disk-resident dataset of the same size.
        """
        objects_file = write_objects_file(self.ctx, objects, name="maxrs-objects")
        try:
            return self.solve_objects_file(objects_file)
        finally:
            objects_file.delete()

    def solve_objects_file(self, objects_file: RecordFile) -> MaxRSResult:
        """Solve MaxRS for a dataset already stored as an object record file."""
        start = self.ctx.stats.snapshot()
        self._leaf_count = 0
        self._deepest_level = 0

        event_file = objects_file_to_event_file(
            self.ctx, objects_file, self.width, self.height, name="maxrs-events")
        sorted_events = external_sort(
            self.ctx, event_file, EVENT_CODEC, key=events_sort_key, delete_input=True)
        best = self._solve_root(sorted_events)

        io = self.ctx.io_since(start)
        region = best.to_region()
        return MaxRSResult(
            location=region.representative_point(),
            region=region,
            total_weight=best.weight,
            io=io,
            recursion_levels=self._deepest_level,
            leaf_count=max(1, self._leaf_count),
        )

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def _solve_root(self, event_file: RecordFile) -> BestStrip:
        root = Slab.root()
        if len(event_file) <= self.memory_records:
            # The whole input fits in memory: PlaneSweep causes no further
            # I/O and there is no slab-file to materialise (Algorithm 2,
            # line 9, invoked at the top level).
            records = event_file.read_all()
            event_file.delete()
            self._leaf_count = 1
            _, best = self._sweep(records, root.x_range)
            return best
        slab_file, best = self._recurse(event_file, root, depth=1)
        slab_file.delete()
        return best

    def _recurse(self, event_file: RecordFile, slab: Slab,
                 depth: int) -> Tuple[RecordFile, BestStrip]:
        """Return the slab-file of ``slab`` and the best strip found in it."""
        self._deepest_level = max(self._deepest_level, depth)
        total_events = len(event_file)
        if total_events <= self.memory_records or depth > self.max_depth:
            return self._leaf(event_file, slab)

        edge_xs = collect_edge_xs(event_file, slab)
        boundaries = choose_boundaries(edge_xs, self.fanout)
        if not boundaries:
            # Every edge shares one x-coordinate: division cannot separate the
            # rectangles, so fall back to the in-memory sweep (see DESIGN.md).
            return self._leaf(event_file, slab)

        sub_files, spanning_file, sub_slabs = partition_event_file(
            self.ctx, event_file, slab, boundaries,
            name_prefix=f"level{depth}-slab{slab.index}")
        event_file.delete()

        child_files: List[RecordFile] = []
        for sub_file, sub_slab in zip(sub_files, sub_slabs):
            if len(sub_file) >= total_events:
                # Degenerate split (all edges piled on one side): avoid an
                # unbounded recursion by solving this child in memory.
                child_file, _ = self._leaf(sub_file, sub_slab)
            else:
                child_file, _ = self._recurse(sub_file, sub_slab, depth + 1)
            child_files.append(child_file)

        merged, best = merge_sweep(
            self.ctx, sub_slabs, child_files, spanning_file,
            name=f"merged-level{depth}-slab{slab.index}")
        for child in child_files:
            child.delete()
        spanning_file.delete()
        return merged, best

    def _leaf(self, event_file: RecordFile, slab: Slab) -> Tuple[RecordFile, BestStrip]:
        """Solve a sub-problem that fits in memory and write its slab-file."""
        self._leaf_count += 1
        records = event_file.read_all()
        event_file.delete()
        tuples, best = self._sweep(records, slab.x_range)
        slab_file = self.ctx.create_file(
            MAX_INTERVAL_CODEC, name=f"slabfile-{slab.index}")
        slab_file.write_all(tuples)
        return slab_file, best

    # ------------------------------------------------------------------ #
    # Extensions beyond the paper
    # ------------------------------------------------------------------ #
    def solve_topk(self, objects: Sequence[WeightedPoint], k: int) -> List[MaxRSResult]:
        """Return the ``k`` best *disjoint-strip* placements (MaxkRS).

        This implements the MaxkRS extension sketched in the paper's future
        work: the final slab-file already contains the best placement of every
        horizontal strip, so the top-k answers are obtained by keeping the
        ``k`` largest strips whose y-ranges do not overlap (greedily, best
        first).  The I/O cost is that of a single ExactMaxRS run plus one scan
        of the final slab-file.
        """
        if k < 1:
            raise AlgorithmError(f"k must be positive, got {k}")
        objects_file = write_objects_file(self.ctx, objects, name="maxkrs-objects")
        try:
            start = self.ctx.stats.snapshot()
            event_file = objects_file_to_event_file(
                self.ctx, objects_file, self.width, self.height, name="maxkrs-events")
            sorted_events = external_sort(
                self.ctx, event_file, EVENT_CODEC, key=events_sort_key,
                delete_input=True)
            strips = self._collect_strips(sorted_events)
            io = self.ctx.io_since(start)
        finally:
            objects_file.delete()

        chosen = select_disjoint_strips(strips, k)
        results = []
        for strip in chosen:
            region = strip.to_region()
            results.append(MaxRSResult(
                location=region.representative_point(),
                region=region,
                total_weight=strip.weight,
                io=io,
                recursion_levels=self._deepest_level,
                leaf_count=max(1, self._leaf_count),
            ))
        return results

    def _collect_strips(self, event_file: RecordFile) -> List[BestStrip]:
        """Run the recursion and return every strip of the final slab-file."""
        root = Slab.root()
        self._leaf_count = 0
        self._deepest_level = 0
        if len(event_file) <= self.memory_records:
            records = event_file.read_all()
            event_file.delete()
            self._leaf_count = 1
            tuples, _ = self._sweep(records, root.x_range)
            return records_to_strips(tuples)
        slab_file, _ = self._recurse(event_file, root, depth=1)
        tuples = slab_file.read_all()
        slab_file.delete()
        return records_to_strips(tuples)


def records_to_strips(records: Sequence[Tuple[float, ...]]) -> List[BestStrip]:
    """Convert consecutive slab-file records into closed strips.

    Each slab-file tuple ``(y, x1, x2, sum)`` describes the strip from its own
    h-line up to the next tuple's h-line; the last strip extends to ``+inf``.
    Shared by the external MaxkRS path and the in-memory top-k fast path in
    :mod:`repro.core.dispatch`.
    """
    strips: List[BestStrip] = []
    for position, record in enumerate(records):
        y, x1, x2, weight = record
        next_y = records[position + 1][0] if position + 1 < len(records) else float("inf")
        strips.append(BestStrip(weight=weight, x1=x1, x2=x2, y1=y, y2=next_y))
    return strips


def select_disjoint_strips(strips: Sequence[BestStrip], k: int) -> List[BestStrip]:
    """Greedily pick up to ``k`` vertically-disjoint strips, best first.

    This is the selection rule of the MaxkRS extension: strips are considered
    in descending weight order and kept only when their y-range does not
    overlap an already chosen strip.
    """
    ordered = sorted(strips, key=lambda strip: strip.weight, reverse=True)
    chosen: List[BestStrip] = []
    for strip in ordered:
        if len(chosen) == k:
            break
        if all(strip.y2 <= other.y1 or strip.y1 >= other.y2 for other in chosen):
            chosen.append(strip)
    return chosen

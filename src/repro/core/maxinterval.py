"""Max-interval tuples -- the records of a slab-file.

Definition 6 of the paper associates, with every *h-line* (a horizontal line
through the bottom or top edge of some input rectangle) and every slab, a
*max-interval*: the x-range within the slab on which the location-weight is
maximal for the horizontal strip between this h-line and the next one.  A
slab-file is the y-sorted sequence of these tuples

    t = <y, [x1, x2], sum>

and is the unit of data exchanged between the levels of the ExactMaxRS
recursion.  :class:`MaxInterval` is the in-memory form of one tuple; on disk a
tuple is stored through :data:`repro.em.codecs.MAX_INTERVAL_CODEC` as the flat
record ``(y, x1, x2, sum)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import GeometryError
from repro.geometry import Interval

__all__ = ["MaxInterval"]


@dataclass(frozen=True, slots=True)
class MaxInterval:
    """One slab-file tuple ``<y, [x1, x2], sum>``.

    Parameters
    ----------
    y:
        The y-coordinate of the h-line that opens the strip this tuple
        describes.  The tuple is valid for every horizontal line with
        y-coordinate in ``(y, y_next)`` where ``y_next`` is the y of the next
        tuple in the same slab-file.
    x1, x2:
        The x-range of the max-interval (``x1 <= x2``; either endpoint may be
        infinite for the unbounded slabs at the edges of the data space).
    sum:
        The location-weight shared by every point of the max-interval in this
        strip.
    """

    y: float
    x1: float
    x2: float
    sum: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1:
            raise GeometryError(
                f"max-interval has inverted x-range [{self.x1}, {self.x2}]"
            )

    @property
    def x_range(self) -> Interval:
        """The x-extent of the tuple as an :class:`~repro.geometry.Interval`."""
        return Interval(self.x1, self.x2)

    # ------------------------------------------------------------------ #
    # Disk representation
    # ------------------------------------------------------------------ #
    def to_record(self) -> Tuple[float, float, float, float]:
        """Return the flat record ``(y, x1, x2, sum)`` stored in slab-files."""
        return (self.y, self.x1, self.x2, self.sum)

    @staticmethod
    def from_record(record: Tuple[float, ...]) -> "MaxInterval":
        """Rebuild a :class:`MaxInterval` from its disk record."""
        y, x1, x2, total = record
        return MaxInterval(y=y, x1=x1, x2=x2, sum=total)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_sum(self, new_sum: float) -> "MaxInterval":
        """Return a copy with a different ``sum`` (upSum adjustment)."""
        return MaxInterval(self.y, self.x1, self.x2, new_sum)

    def shifted_to(self, y: float) -> "MaxInterval":
        """Return a copy re-anchored at a different h-line ``y``."""
        return MaxInterval(y, self.x1, self.x2, self.sum)

"""In-memory plane sweep over the dual rectangles (Imai & Asano style).

This is the classical ``O(K log K)`` sweep the computational-geometry
literature uses for the rectangle-intersection / max-enclosing-rectangle
problem, and it plays two roles in the reproduction:

* it is the **base case** of the ExactMaxRS recursion (Algorithm 2, line 9:
  ``PlaneSweep(R)``): once the rectangles of a slab fit in memory their
  slab-file is computed directly, without further I/O;
* via :func:`solve_in_memory` it doubles as the exact reference solver used by
  the tests and by the small-dataset fast path of the public API.

The sweep moves a horizontal line bottom-to-top over the rectangle edges.  The
active rectangles induce a location-weight profile over the elementary
x-intervals of the slab, maintained in a
:class:`~repro.core.segment_tree.MaxAddSegmentTree`; after processing all the
edges sharing one y-coordinate (one *h-line*), the profile's maximum and the
maximal interval attaining it are emitted as the slab-file tuple for the strip
above that h-line.

:func:`sweep_events` is also the reference implementation behind the
``"pure"`` entry of the pluggable backend layer (:mod:`repro.core.backends`);
the vectorised backends are property-tested against it.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro import obs
from repro.core.beststrip import BestStrip, BestStripTracker
from repro.core.segment_tree import MaxAddSegmentTree
from repro.core.transform import objects_to_event_records
from repro.core.result import MaxRSResult
from repro.em.codecs import EVENT_BOTTOM
from repro.geometry import Interval, WeightedPoint

if TYPE_CHECKING:  # lazily imported at runtime (see solve_in_memory)
    from repro.core.backends import BackendSpec

__all__ = ["sweep_events", "solve_in_memory", "PlaneSweepOutput"]

Record = Tuple[float, ...]

#: (slab-file records, best strip) returned by :func:`sweep_events`.
PlaneSweepOutput = Tuple[List[Record], BestStrip]


def sweep_events(event_records: Sequence[Record],
                 slab_range: Interval | None = None) -> PlaneSweepOutput:
    """Run the in-memory plane sweep over a set of event records.

    Parameters
    ----------
    event_records:
        Flat event records ``(y, kind, x1, x2, weight)`` of the dual
        rectangles (both edges of each rectangle).  They need not be sorted.
    slab_range:
        The x-extent of the slab the events belong to; rectangles are clipped
        to it and zero-coverage strips report it as their max-interval.
        Defaults to the whole real line (the root slab).

    Returns
    -------
    (records, best):
        ``records`` is the slab-file: one max-interval record
        ``(y, x1, x2, sum)`` per distinct event y-coordinate, in ascending y
        order.  ``best`` is the best strip over the whole sweep.
    """
    if slab_range is None:
        slab_range = Interval.full()
    slab_lo, slab_hi = slab_range.lo, slab_range.hi
    if not event_records:
        return [], BestStrip.empty(slab_lo, slab_hi)

    events = sorted(event_records)
    xs = _elementary_boundaries(events, slab_lo, slab_hi)
    num_cells = len(xs) - 1
    if num_cells < 1:
        # Degenerate slab (zero width): nothing can be covered strictly inside.
        return [], BestStrip.empty(slab_lo, slab_hi)

    tree = MaxAddSegmentTree(num_cells)
    tracker = BestStripTracker()
    output: List[Record] = []

    index = 0
    total = len(events)
    while index < total:
        y = events[index][0]
        # Apply every edge lying on this h-line before emitting the tuple for
        # the strip above it.
        while index < total and events[index][0] == y:
            _, kind, x1, x2, weight = events[index]
            index += 1
            lo = max(x1, slab_lo)
            hi = min(x2, slab_hi)
            if lo >= hi or weight == 0.0:
                continue
            left = bisect_left(xs, lo)
            right = bisect_left(xs, hi) - 1
            delta = weight if kind == EVENT_BOTTOM else -weight
            tree.range_add(left, right, delta)
        best_value = tree.global_max()
        cell = tree.argmax_leftmost()
        run_end = tree.max_run_from(cell)
        record = (y, xs[cell], xs[run_end + 1], best_value)
        output.append(record)
        tracker.observe(y, record[1], record[2], best_value)

    tracker.finish()
    return output, tracker.best


def _elementary_boundaries(events: Sequence[Record], slab_lo: float,
                           slab_hi: float) -> List[float]:
    """Return the sorted, de-duplicated cell boundaries of the sweep.

    The boundaries are the rectangle x-edges clipped to the slab, plus the
    slab's own (possibly infinite) borders so zero-coverage strips can report
    the full slab extent.
    """
    coords = {slab_lo, slab_hi}
    for _, _, x1, x2, _ in events:
        lo = max(x1, slab_lo)
        hi = min(x2, slab_hi)
        if lo < hi:
            coords.add(lo)
            coords.add(hi)
    xs = sorted(c for c in coords if not math.isnan(c))
    return xs


def solve_in_memory(objects: Sequence[WeightedPoint], width: float,
                    height: float, *,
                    backend: "BackendSpec" = None) -> MaxRSResult:
    """Solve a MaxRS instance entirely in memory.

    This is the exact solver the tests use as an oracle and the fast path the
    public API takes when the dataset is small.  It performs no simulated I/O.

    ``backend`` selects the sweep execution strategy (a
    :class:`~repro.core.backends.SweepBackend` instance, a name, or ``None``
    for the size-based auto rule -- see :mod:`repro.core.backends`).  Only
    the best strip is consumed here, so backends may skip materialising the
    slab-file tuples.

    Examples
    --------
    >>> objs = [WeightedPoint(0, 0), WeightedPoint(1, 1), WeightedPoint(9, 9)]
    >>> result = solve_in_memory(objs, width=4, height=4)
    >>> result.total_weight
    2.0
    """
    # Imported lazily: repro.core.backends imports this module's
    # sweep_events for its reference backend.
    from repro.core.backends import resolve_backend

    records = objects_to_event_records(objects, width, height)
    sweep_backend = resolve_backend(backend, len(records))
    with obs.span("backend.sweep", backend=sweep_backend.name,
                  events=len(records)):
        _, best = sweep_backend.sweep(records, Interval.full(),
                                      include_records=False)
    region = best.to_region()
    return MaxRSResult(
        location=region.representative_point(),
        region=region,
        total_weight=best.weight,
        io=None,
        recursion_levels=0,
        leaf_count=1,
    )

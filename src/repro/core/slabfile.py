"""Disk-resident slab-files.

A *slab-file* (Section 5.2.2) is the y-sorted sequence of max-interval tuples
that summarises the solution of one sub-problem of the ExactMaxRS recursion.
On the simulated disk it is simply a :class:`~repro.em.record_file.RecordFile`
of ``(y, x1, x2, sum)`` records; this module provides the small set of helpers
the algorithms and tests share for creating, reading and validating them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.beststrip import BestStrip, BestStripTracker
from repro.core.maxinterval import MaxInterval
from repro.em.codecs import MAX_INTERVAL_CODEC
from repro.em.context import EMContext
from repro.em.record_file import RecordFile
from repro.errors import AlgorithmError

__all__ = [
    "write_slab_file",
    "iter_slab_file",
    "read_slab_file",
    "find_best_strip",
    "validate_slab_file_records",
]

Record = Tuple[float, ...]


def write_slab_file(ctx: EMContext, records: Iterable[Record],
                    name: str = "slab-file") -> RecordFile:
    """Write max-interval records (already sorted by y) to a new slab-file."""
    file = ctx.create_file(MAX_INTERVAL_CODEC, name=name)
    file.write_all(records)
    return file


def iter_slab_file(file: RecordFile) -> Iterator[MaxInterval]:
    """Iterate a slab-file as :class:`~repro.core.maxinterval.MaxInterval` objects."""
    for record in file.reader():
        yield MaxInterval.from_record(record)


def read_slab_file(file: RecordFile) -> List[MaxInterval]:
    """Read a whole slab-file into memory (tests and small inputs only)."""
    return list(iter_slab_file(file))


def find_best_strip(file: RecordFile) -> BestStrip:
    """Scan a slab-file and return its best strip.

    The ExactMaxRS driver tracks the best strip incrementally during the final
    merge, so this linear scan is only needed when a slab-file is examined in
    isolation (tests, the top-k extension, and diagnostics).
    """
    tracker = BestStripTracker()
    for y, x1, x2, total in file.reader():
        tracker.observe(y, x1, x2, total)
    tracker.finish()
    return tracker.best


def validate_slab_file_records(records: Sequence[Record]) -> None:
    """Check the structural invariants of a slab-file.

    * tuples are sorted by strictly increasing y;
    * every tuple has a well-formed x-range (``x1 <= x2``);
    * sums are non-negative (weights are non-negative in MaxRS).

    Raises
    ------
    AlgorithmError
        If any invariant is violated.
    """
    previous_y = None
    for record in records:
        y, x1, x2, total = record
        if previous_y is not None and y <= previous_y:
            raise AlgorithmError(
                f"slab-file tuples not strictly increasing in y: {previous_y} then {y}"
            )
        if x2 < x1:
            raise AlgorithmError(f"slab-file tuple has inverted x-range: {record}")
        if total < 0:
            raise AlgorithmError(f"slab-file tuple has negative sum: {record}")
        previous_y = y

"""The dual problem transformation (Section 4 of the paper).

The MaxRS problem -- place a ``d1 x d2`` rectangle to maximize the covered
weight -- is transformed into the *rectangle intersection* problem: draw a
``d1 x d2`` rectangle centred at every object, each carrying the object's
weight, and look for the region where the total weight of overlapping
rectangles is maximal (the *max-region*).  Any point of the max-region is an
optimal centre for the original problem, because a dual rectangle centred at
object ``o`` covers a candidate centre ``p`` exactly when the query rectangle
centred at ``p`` covers ``o``.

This module provides the transformation in the two forms used by the rest of
the library:

* purely in memory (lists of objects -> lists of rectangles / events), used by
  the plane-sweep base case, the baselines' oracles and the tests;
* streaming over the external-memory substrate (an object
  :class:`~repro.em.record_file.RecordFile` -> an event file), used by
  ExactMaxRS and the externalized baselines.  The streaming form costs one
  linear read of the object file plus one linear write of the event file.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.em.codecs import EVENT_BOTTOM, EVENT_CODEC, EVENT_TOP, OBJECT_CODEC
from repro.em.context import EMContext
from repro.em.record_file import RecordFile
from repro.errors import GeometryError
from repro.geometry import Rect, WeightedPoint

__all__ = [
    "dual_rectangle",
    "dual_rectangles",
    "objects_to_event_records",
    "build_event_file",
    "objects_file_to_event_file",
    "write_objects_file",
]


def dual_rectangle(obj: WeightedPoint, width: float, height: float) -> Rect:
    """Return the dual rectangle of one object: the query-sized rectangle
    centred at the object's location."""
    if width <= 0 or height <= 0:
        raise GeometryError(
            f"query rectangle must have positive extent, got {width} x {height}"
        )
    return Rect.centered_at(obj.point, width, height)


def dual_rectangles(objects: Iterable[WeightedPoint], width: float,
                    height: float) -> List[Tuple[Rect, float]]:
    """Return the list of (dual rectangle, weight) pairs for ``objects``."""
    return [(dual_rectangle(o, width, height), o.weight) for o in objects]


def objects_to_event_records(objects: Iterable[WeightedPoint], width: float,
                             height: float) -> List[Tuple[float, ...]]:
    """Return the (unsorted) sweep-event records of the dual rectangles.

    Each object yields two records: a bottom-edge event and a top-edge event of
    its dual rectangle.  The caller is responsible for sorting by y before
    sweeping.
    """
    if width <= 0 or height <= 0:
        raise GeometryError(
            f"query rectangle must have positive extent, got {width} x {height}"
        )
    half_w = width / 2.0
    half_h = height / 2.0
    records: List[Tuple[float, ...]] = []
    for o in objects:
        x1 = o.x - half_w
        x2 = o.x + half_w
        records.append((o.y - half_h, EVENT_BOTTOM, x1, x2, o.weight))
        records.append((o.y + half_h, EVENT_TOP, x1, x2, o.weight))
    return records


def write_objects_file(ctx: EMContext, objects: Iterable[WeightedPoint],
                       name: str = "objects") -> RecordFile:
    """Write a dataset of objects to a new record file on the simulated disk."""
    file = ctx.create_file(OBJECT_CODEC, name=name)
    with file.writer() as writer:
        for o in objects:
            writer.append((o.x, o.y, o.weight))
    return file


def build_event_file(ctx: EMContext, objects: Iterable[WeightedPoint],
                     width: float, height: float,
                     name: str = "events") -> RecordFile:
    """Build an (unsorted) event file directly from an in-memory object iterable.

    Prefer :func:`objects_file_to_event_file` when the objects already live on
    the simulated disk, so the read pass is charged as I/O.
    """
    if width <= 0 or height <= 0:
        raise GeometryError(
            f"query rectangle must have positive extent, got {width} x {height}"
        )
    file = ctx.create_file(EVENT_CODEC, name=name)
    half_w = width / 2.0
    half_h = height / 2.0
    with file.writer() as writer:
        for o in objects:
            x1 = o.x - half_w
            x2 = o.x + half_w
            writer.append((o.y - half_h, EVENT_BOTTOM, x1, x2, o.weight))
            writer.append((o.y + half_h, EVENT_TOP, x1, x2, o.weight))
    return file


def objects_file_to_event_file(ctx: EMContext, objects_file: RecordFile,
                               width: float, height: float,
                               name: str = "events") -> RecordFile:
    """Transform a disk-resident object file into an (unsorted) event file.

    Costs one linear read of the object file and one linear write of the event
    file (the event file holds ``2N`` records of 40 bytes versus ``N`` records
    of 24 bytes, so roughly ``3.3 N / B`` block transfers in total with the
    default 4 KB blocks).
    """
    if width <= 0 or height <= 0:
        raise GeometryError(
            f"query rectangle must have positive extent, got {width} x {height}"
        )
    event_file = ctx.create_file(EVENT_CODEC, name=name)
    half_w = width / 2.0
    half_h = height / 2.0
    with event_file.writer() as writer:
        for x, y, weight in objects_file.reader():
            x1 = x - half_w
            x2 = x + half_w
            writer.append((y - half_h, EVENT_BOTTOM, x1, x2, weight))
            writer.append((y + half_h, EVENT_TOP, x1, x2, weight))
    return event_file


def count_objects(objects: Sequence[WeightedPoint]) -> int:
    """Return the cardinality ``N = |O|`` of a dataset (trivial helper used by
    the experiment reporting)."""
    return len(objects)

"""Segment tree with lazy range additions and max/argmax queries.

Both sweep algorithms of the reproduction need the same dynamic structure:

* the in-memory plane sweep (base case of ExactMaxRS) maintains the
  location-weight profile over the elementary x-intervals of a slab while
  rectangles are inserted and deleted, and repeatedly asks for the maximum and
  where it is attained;
* ``MergeSweep`` maintains, per sub-slab, the *effective* sum (the slab's own
  max-interval sum plus the weight of the spanning rectangles currently
  crossing it) and repeatedly asks which sub-slab currently attains the
  maximum.  Spanning rectangles update a contiguous *range* of sub-slabs,
  which is exactly a lazy range addition.

The tree works over ``n`` abstract cells indexed ``0 .. n-1``; mapping
x-coordinates (or sub-slab indices) to cells is the caller's business.  All
operations are ``O(log n)``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import AlgorithmError

__all__ = ["MaxAddSegmentTree"]


class MaxAddSegmentTree:
    """Lazy segment tree supporting range add, max, argmax and point queries.

    Parameters
    ----------
    n:
        Number of cells (must be >= 1).  All cells start at value 0.

    Examples
    --------
    >>> tree = MaxAddSegmentTree(4)
    >>> tree.range_add(1, 2, 5.0)
    >>> tree.global_max()
    5.0
    >>> tree.argmax_leftmost()
    1
    >>> tree.point_value(3)
    0.0
    """

    __slots__ = ("n", "_max", "_min", "_add")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise AlgorithmError(f"segment tree needs at least one cell, got {n}")
        self.n = n
        size = 4 * n
        self._max: List[float] = [0.0] * size
        self._min: List[float] = [0.0] * size
        self._add: List[float] = [0.0] * size

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def range_add(self, left: int, right: int, delta: float) -> None:
        """Add ``delta`` to every cell in ``[left, right]`` (inclusive)."""
        if left > right:
            return
        if left < 0 or right >= self.n:
            raise AlgorithmError(
                f"range [{left}, {right}] out of bounds for {self.n} cells"
            )
        if delta == 0.0:
            return
        self._range_add(1, 0, self.n - 1, left, right, delta)

    def _range_add(self, node: int, lo: int, hi: int, left: int, right: int,
                   delta: float) -> None:
        if left <= lo and hi <= right:
            self._add[node] += delta
            self._max[node] += delta
            self._min[node] += delta
            return
        mid = (lo + hi) // 2
        lchild = 2 * node
        rchild = 2 * node + 1
        if left <= mid:
            self._range_add(lchild, lo, mid, left, right, delta)
        if right > mid:
            self._range_add(rchild, mid + 1, hi, left, right, delta)
        own = self._add[node]
        self._max[node] = max(self._max[lchild], self._max[rchild]) + own
        self._min[node] = min(self._min[lchild], self._min[rchild]) + own

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def global_max(self) -> float:
        """Return the maximum cell value."""
        return self._max[1]

    def global_min(self) -> float:
        """Return the minimum cell value."""
        return self._min[1]

    def argmax_leftmost(self) -> int:
        """Return the index of the leftmost cell attaining the maximum."""
        node, lo, hi = 1, 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            lchild = 2 * node
            # The child's stored max excludes the current node's pending add,
            # but the comparison between siblings is unaffected by it.
            if self._max[lchild] >= self._max[2 * node + 1]:
                node, hi = lchild, mid
            else:
                node, lo = 2 * node + 1, mid + 1
        return lo

    def point_value(self, index: int) -> float:
        """Return the current value of one cell."""
        if not 0 <= index < self.n:
            raise AlgorithmError(f"cell {index} out of bounds for {self.n} cells")
        node, lo, hi = 1, 0, self.n - 1
        total = 0.0
        while lo < hi:
            total += self._add[node]
            mid = (lo + hi) // 2
            if index <= mid:
                node, hi = 2 * node, mid
            else:
                node, lo = 2 * node + 1, mid + 1
        return total + self._max[node]

    def find_first_below(self, start: int, threshold: float) -> Optional[int]:
        """Return the smallest cell index ``>= start`` whose value is strictly
        below ``threshold``, or ``None`` when every such cell is ``>= threshold``.

        Used to extend the leftmost maximal cell into the maximal contiguous
        run of cells attaining the maximum (the run ends right before the
        first cell that falls below the maximum).
        """
        if start >= self.n:
            return None
        if start < 0:
            start = 0
        return self._find_first_below(1, 0, self.n - 1, start, threshold, 0.0)

    def _find_first_below(self, node: int, lo: int, hi: int, start: int,
                          threshold: float, acc: float) -> Optional[int]:
        if hi < start:
            return None
        if self._min[node] + acc >= threshold:
            return None
        if lo == hi:
            return lo
        mid = (lo + hi) // 2
        acc_child = acc + self._add[node]
        found = self._find_first_below(2 * node, lo, mid, start, threshold, acc_child)
        if found is not None:
            return found
        return self._find_first_below(2 * node + 1, mid + 1, hi, start, threshold,
                                      acc_child)

    def max_run_from(self, start: int) -> int:
        """Return the last index of the contiguous run of cells, beginning at
        ``start``, whose values all equal the value of cell ``start``.

        In the plane sweep ``start`` is the leftmost maximal cell, so the run
        ``[start, end]`` is the maximal x-range on which the maximum
        location-weight is attained, as required by Definition 6.
        """
        target = self.point_value(start)
        below = self.find_first_below(start + 1, target - 1e-12 * max(1.0, abs(target)))
        if below is None:
            return self.n - 1
        return below - 1

    # ------------------------------------------------------------------ #
    # Debug helpers
    # ------------------------------------------------------------------ #
    def to_list(self) -> List[float]:
        """Return all cell values (test helper; O(n log n))."""
        return [self.point_value(i) for i in range(self.n)]

    def validate(self) -> None:
        """Check internal max/min consistency against the cell values."""
        values = self.to_list()
        if not math.isclose(max(values), self.global_max(), rel_tol=1e-9, abs_tol=1e-9):
            raise AlgorithmError("segment tree max is inconsistent with cell values")
        if not math.isclose(min(values), self.global_min(), rel_tol=1e-9, abs_tol=1e-9):
            raise AlgorithmError("segment tree min is inconsistent with cell values")

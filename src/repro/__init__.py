"""repro -- a reproduction of "A Scalable Algorithm for Maximizing Range Sum
in Spatial Databases" (Choi, Chung, Tao; PVLDB 2012).

The package provides:

* :class:`~repro.core.exact_maxrs.ExactMaxRS` -- the paper's external-memory
  MaxRS algorithm, running on a fully simulated external-memory substrate
  (:mod:`repro.em`) that counts block transfers exactly like the paper's
  experiments do;
* :class:`~repro.circles.approx_maxcrs.ApproxMaxCRS` -- the (1/4)-approximate
  MaxCRS algorithm, plus an exact MaxCRS solver used to measure the practical
  approximation ratio;
* the two baselines of the empirical study (naive external plane sweep and the
  aSB-tree) in :mod:`repro.baselines`;
* dataset generators (:mod:`repro.datasets`) and the experiment harness that
  regenerates every table and figure of the paper (:mod:`repro.experiments`).

For most uses the high-level API in :mod:`repro.api` is the entry point::

    from repro import MaxRSSolver
    from repro.geometry import WeightedPoint

    solver = MaxRSSolver(width=1000.0, height=1000.0)
    result = solver.solve([WeightedPoint(x, y) for x, y in locations])
    print(result.location, result.total_weight)

Serving many queries
--------------------

``MaxRSSolver`` is one-shot: each call re-ingests the dataset and pays the
full sort-and-sweep cost.  When the same dataset must answer many queries
(varying rectangle sizes, top-k, circles), use the resident query engine in
:mod:`repro.service` instead -- it snapshots and grid-indexes the dataset
once, serves repeated parameters from an LRU result cache, and prunes the
exact sweep to the contention hot spots for new parameters, without changing
any answer::

    from repro import MaxRSEngine, QuerySpec

    engine = MaxRSEngine()
    dataset = engine.register_dataset(objects)          # ingest + index once
    a = engine.query(dataset, QuerySpec.maxrs(1000.0, 1000.0))
    b = engine.query(dataset, QuerySpec.maxrs(1000.0, 1000.0))  # cache hit
    results = engine.query_batch(dataset, many_specs)   # dedup + thread pool
    print(engine.stats()["cache"]["hit_rate"])

See ``examples/query_service.py`` for a complete walk-through.

For **concurrent** traffic -- many clients, possibly over the network --
wrap the engine in the asyncio serving front-end (:mod:`repro.aio`):
``AsyncMaxRSEngine`` coalesces identical in-flight queries and applies
bounded admission with backpressure, and ``MaxRSServer`` /
``AsyncQueryClient`` speak a JSON-lines TCP protocol with bit-identical
answers; see ``examples/async_service.py``.

The whole stack is observable through :mod:`repro.obs`: per-query traces of
nested spans (admission, cache, shards, plane sweep, blob I/O) that follow a
query across threads, tasks and the TCP wire, a slow-query log, and
Prometheus-style metrics exposition; see ``docs/observability.md`` and
``examples/traced_query.py``.
"""

from repro.core import ExactMaxRS, MaxCRSResult, MaxRegion, MaxRSResult
from repro.em import EMConfig, EMContext
from repro.errors import ReproError
from repro.geometry import Circle, Interval, Point, Rect, WeightedPoint

__version__ = "1.0.0"

__all__ = [
    "Circle",
    "EMConfig",
    "EMContext",
    "ExactMaxRS",
    "Interval",
    "MaxCRSResult",
    "MaxCRSSolver",
    "MaxRSEngine",
    "MaxRSResult",
    "MaxRSSolver",
    "MaxRegion",
    "Point",
    "QuerySpec",
    "Rect",
    "ReproError",
    "WeightedPoint",
    "__version__",
]


def __getattr__(name: str):
    """Lazily expose the high-level solvers and the resident query engine.

    ``MaxRSSolver`` / ``MaxCRSSolver`` live in :mod:`repro.api` and
    ``MaxRSEngine`` / ``QuerySpec`` in :mod:`repro.service`, which pull in
    the circle subsystem and numpy; importing them lazily keeps ``import
    repro`` light and avoids import cycles for code that only needs the core
    types.
    """
    if name in ("MaxRSSolver", "MaxCRSSolver"):
        from repro import api

        return getattr(api, name)
    if name in ("MaxRSEngine", "QuerySpec"):
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

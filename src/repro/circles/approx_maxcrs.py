"""ApproxMaxCRS -- Algorithm 3 of the paper.

The MaxCRS problem (place a circle of diameter ``d`` to maximise the covered
weight) is 3SUM-hard to solve exactly in subquadratic time, so the paper
reduces it to MaxRS:

1. each transformed circle is replaced by its minimum bounding rectangle -- a
   ``d x d`` square centred at the object -- and ExactMaxRS is run on those
   squares (equivalently: MaxRS with a ``d x d`` query rectangle on the same
   objects);
2. the centre ``p0`` of the resulting max-region, together with four points
   shifted diagonally by ``sigma`` (:mod:`repro.circles.shifting`), are
   evaluated as circle centres with one scan of the dataset;
3. the best of the five candidates is returned.

Theorem 3 proves the returned circle covers at least ``1/4`` of the optimal
weight for any admissible ``sigma``; Theorem 4 shows the bound is tight for
this algorithm.  Empirically (Figure 17) the ratio is far better -- usually
above 0.8 -- which the experiment harness reproduces by comparing against the
exact solver in :mod:`repro.circles.exact_maxcrs`.

The I/O cost is that of ExactMaxRS plus one linear scan, hence still
``O((N/B) log_{M/B}(N/B))``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circles.coverage import best_candidate, coverage_of_candidates_file
from repro.circles.shifting import candidate_points
from repro.core.exact_maxrs import ExactMaxRS
from repro.core.result import MaxCRSResult
from repro.core.transform import write_objects_file
from repro.em.context import EMContext
from repro.em.record_file import RecordFile
from repro.errors import ConfigurationError
from repro.geometry import WeightedPoint

__all__ = ["ApproxMaxCRS"]


class ApproxMaxCRS:
    """(1/4)-approximate external-memory solver for the MaxCRS problem.

    Parameters
    ----------
    ctx:
        External-memory context (shared with the underlying ExactMaxRS run).
    diameter:
        The circle diameter ``d``.
    sigma:
        Shift distance for the four extra candidates; defaults to
        ``sqrt(2) d / 4`` (see :mod:`repro.circles.shifting`).  Must lie in
        Lemma 5's open interval for the approximation bound to hold.
    fanout, memory_records:
        Forwarded to :class:`~repro.core.exact_maxrs.ExactMaxRS`; tests use
        them to force external recursions on small datasets.

    Examples
    --------
    >>> from repro.em import EMContext
    >>> objs = [WeightedPoint(0, 0), WeightedPoint(0.4, 0.3), WeightedPoint(8, 8)]
    >>> result = ApproxMaxCRS(EMContext(), diameter=2.0).solve(objs)
    >>> result.total_weight >= 2.0 / 4.0
    True
    """

    def __init__(self, ctx: EMContext, diameter: float, *,
                 sigma: Optional[float] = None,
                 fanout: Optional[int] = None,
                 memory_records: Optional[int] = None) -> None:
        if diameter <= 0:
            raise ConfigurationError(f"diameter must be positive, got {diameter}")
        self.ctx = ctx
        self.diameter = diameter
        self.sigma = sigma
        self._maxrs = ExactMaxRS(ctx, diameter, diameter,
                                 fanout=fanout, memory_records=memory_records)

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def solve(self, objects: Sequence[WeightedPoint]) -> MaxCRSResult:
        """Solve MaxCRS (approximately) for an in-memory list of objects."""
        objects_file = write_objects_file(self.ctx, objects, name="maxcrs-objects")
        try:
            return self.solve_objects_file(objects_file)
        finally:
            objects_file.delete()

    def solve_objects_file(self, objects_file: RecordFile) -> MaxCRSResult:
        """Solve MaxCRS (approximately) for a disk-resident dataset."""
        start = self.ctx.stats.snapshot()

        # Step 1: MaxRS over the d x d MBRs of the transformed circles.  The
        # MBR of the circle centred at an object *is* the d x d dual rectangle
        # of that object, so this is exactly ExactMaxRS with a square query.
        rect_result = self._maxrs.solve_objects_file(objects_file)

        # Step 2: candidate centres -- the max-region's centre plus the four
        # shifted points of Figure 9.
        p0 = rect_result.location
        candidates = candidate_points(p0, self.diameter, self.sigma)

        # Step 3: one scan of the dataset evaluates all candidates at once.
        weights = coverage_of_candidates_file(objects_file, candidates, self.diameter)
        chosen, chosen_weight, _ = best_candidate(candidates, weights)

        io = self.ctx.io_since(start)
        return MaxCRSResult(
            location=chosen,
            total_weight=chosen_weight,
            candidates=tuple(candidates),
            candidate_weights=tuple(weights),
            rectangle_result=rect_result,
            io=io,
        )

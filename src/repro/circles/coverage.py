"""Evaluating circle coverage for candidate centres.

The last step of ApproxMaxCRS (Algorithm 3, line 7) picks, among its five
candidate centres, the one whose circle covers the most weight.  The paper
notes this "requires only a single scan of C": all candidates are evaluated
simultaneously while streaming the objects once.  This module provides that
single-scan evaluation both over an in-memory object list and over a
disk-resident object file (where the scan is charged as I/O).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.em.record_file import RecordFile
from repro.errors import ConfigurationError
from repro.geometry import Point, WeightedPoint

__all__ = ["coverage_of_candidates", "coverage_of_candidates_file", "best_candidate"]


def coverage_of_candidates(objects: Sequence[WeightedPoint],
                           candidates: Sequence[Point],
                           diameter: float) -> List[float]:
    """Return the covered weight of a circle of ``diameter`` at each candidate.

    One pass over ``objects``; boundary objects are excluded (open disks),
    matching the problem definition.
    """
    if diameter <= 0:
        raise ConfigurationError(f"diameter must be positive, got {diameter}")
    radius_sq = (diameter / 2.0) ** 2
    totals = [0.0] * len(candidates)
    for obj in objects:
        for index, candidate in enumerate(candidates):
            dx = obj.x - candidate.x
            dy = obj.y - candidate.y
            if dx * dx + dy * dy < radius_sq:
                totals[index] += obj.weight
    return totals


def coverage_of_candidates_file(objects_file: RecordFile,
                                candidates: Sequence[Point],
                                diameter: float) -> List[float]:
    """Single-scan candidate evaluation over a disk-resident object file.

    Reading the file is charged through the buffer pool, so ApproxMaxCRS's
    final step costs exactly one linear pass of I/O regardless of how many
    candidates are evaluated.
    """
    if diameter <= 0:
        raise ConfigurationError(f"diameter must be positive, got {diameter}")
    radius_sq = (diameter / 2.0) ** 2
    totals = [0.0] * len(candidates)
    for x, y, weight in objects_file.reader():
        for index, candidate in enumerate(candidates):
            dx = x - candidate.x
            dy = y - candidate.y
            if dx * dx + dy * dy < radius_sq:
                totals[index] += weight
    return totals


def best_candidate(candidates: Sequence[Point],
                   weights: Sequence[float]) -> Tuple[Point, float, int]:
    """Return ``(point, weight, index)`` of the best candidate.

    Ties are broken in favour of the earliest candidate, so ``p0`` (the
    rectangle optimum's centre) wins ties against the shifted points.
    """
    if not candidates or len(candidates) != len(weights):
        raise ConfigurationError("candidates and weights must be non-empty and aligned")
    best_index = 0
    for index in range(1, len(candidates)):
        if weights[index] > weights[best_index]:
            best_index = index
    return candidates[best_index], weights[best_index], best_index

"""Exact MaxCRS solver (the paper's accuracy yardstick).

Figure 17 of the paper reports the ratio ``W(c_hat) / W(c*)`` between the
weight found by ApproxMaxCRS and the true optimum.  The authors obtained
``W(c*)`` from "a theoretical algorithm [Drezner 1981] that has time
complexity O(n^2 log n) (and therefore, is not practical)".  This module
implements the same classical algorithm -- the angular sweep over circle
intersections (Chazelle & Lee / Drezner) -- vectorised with NumPy so the
approximation-quality experiment can be reproduced on datasets of a few
thousand objects.

Algorithm sketch (equal radii ``r = d/2``):

* In the transformed problem each object carries an open disk of radius ``r``;
  the optimum is a point of maximum total disk weight.
* A point of maximum depth can be chosen either at the centre of some disk or
  arbitrarily close to an intersection point of two disk boundaries.
* For every object ``i`` the algorithm sweeps the boundary circle of its disk:
  every other object ``j`` within distance ``< 2r`` covers an angular arc of
  that circle; the maximum total weight over all arcs (plus ``w_i`` itself,
  since points just inside the boundary are covered by disk ``i``) is the best
  depth attainable on that circle.  Together with the disk-centre candidates
  this yields the global optimum in ``O(n^2 log n)`` time.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import Point, WeightedPoint

__all__ = ["exact_maxcrs"]


def exact_maxcrs(objects: Sequence[WeightedPoint],
                 diameter: float) -> Tuple[Point, float]:
    """Return an optimal circle centre and the optimal covered weight.

    Parameters
    ----------
    objects:
        The weighted input objects.
    diameter:
        The circle diameter ``d``.

    Returns
    -------
    (centre, weight):
        ``centre`` is a point whose circle of ``diameter`` covers (up to
        boundary-degenerate ties) the maximum possible weight ``weight``.

    Notes
    -----
    Complexity is ``Θ(n^2 log n)`` -- use it for validation-sized inputs (a
    few thousand objects), as the paper itself did.
    """
    if diameter <= 0:
        raise ConfigurationError(f"diameter must be positive, got {diameter}")
    count = len(objects)
    if count == 0:
        return Point(0.0, 0.0), 0.0

    xs = np.array([o.x for o in objects], dtype=np.float64)
    ys = np.array([o.y for o in objects], dtype=np.float64)
    ws = np.array([o.weight for o in objects], dtype=np.float64)
    radius = diameter / 2.0

    best_weight, best_point = _best_at_centres(xs, ys, ws, radius)

    for i in range(count):
        weight_i, point_i = _sweep_circle(i, xs, ys, ws, radius)
        if weight_i > best_weight:
            best_weight = weight_i
            best_point = point_i

    return best_point, best_weight


def _best_at_centres(xs: np.ndarray, ys: np.ndarray, ws: np.ndarray,
                     radius: float) -> Tuple[float, Point]:
    """Evaluate every object location as a candidate centre (vectorised)."""
    best_weight = -math.inf
    best_point = Point(float(xs[0]), float(ys[0]))
    radius_sq = radius * radius
    for i in range(len(xs)):
        dist_sq = (xs - xs[i]) ** 2 + (ys - ys[i]) ** 2
        weight = float(ws[dist_sq < radius_sq].sum())
        if weight > best_weight:
            best_weight = weight
            best_point = Point(float(xs[i]), float(ys[i]))
    return best_weight, best_point


def _sweep_circle(i: int, xs: np.ndarray, ys: np.ndarray, ws: np.ndarray,
                  radius: float) -> Tuple[float, Point]:
    """Angular sweep over the boundary circle of disk ``i``.

    Returns the best attainable weight just inside that circle and a point
    achieving it (nudged towards the centre so it lies strictly inside disk
    ``i`` and strictly inside every disk covering the winning arc).
    """
    dx = xs - xs[i]
    dy = ys - ys[i]
    dist = np.hypot(dx, dy)
    neighbour = (dist > 0.0) & (dist < 2.0 * radius)
    base = float(ws[i])
    centre = Point(float(xs[i]), float(ys[i]))
    if not neighbour.any():
        return base, centre

    theta = np.arctan2(dy[neighbour], dx[neighbour])
    half_angle = np.arccos(np.clip(dist[neighbour] / (2.0 * radius), -1.0, 1.0))
    weights = ws[neighbour]

    starts = theta - half_angle
    ends = theta + half_angle

    # Unroll arcs onto [0, 2*pi) with wrap-around split.
    angles = []
    deltas = []
    for start, end, weight in zip(starts, ends, weights):
        start = float(start) % (2.0 * math.pi)
        end = float(end) % (2.0 * math.pi)
        if start <= end:
            angles.extend((start, end))
            deltas.extend((weight, -weight))
        else:
            angles.extend((start, 2.0 * math.pi, 0.0, end))
            deltas.extend((weight, -weight, weight, -weight))

    order = np.argsort(np.array(angles), kind="stable")
    sorted_angles = np.array(angles)[order]
    sorted_deltas = np.array(deltas)[order]

    best_extra = 0.0
    best_angle = 0.0
    running = 0.0
    index = 0
    total = len(sorted_angles)
    while index < total:
        angle = sorted_angles[index]
        while index < total and sorted_angles[index] == angle:
            running += sorted_deltas[index]
            index += 1
        if running > best_extra:
            best_extra = running
            # Midpoint of the winning arc segment keeps the point strictly
            # inside the covering disks (rather than on their boundary).
            next_angle = sorted_angles[index] if index < total else angle + 2.0 * math.pi
            best_angle = (angle + next_angle) / 2.0

    nudge = radius * (1.0 - 1e-9)
    point = Point(centre.x + nudge * math.cos(best_angle),
                  centre.y + nudge * math.sin(best_angle))
    return base + float(best_extra), point

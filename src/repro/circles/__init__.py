"""MaxCRS: the circular variant of the range-sum maximisation problem.

* :class:`~repro.circles.approx_maxcrs.ApproxMaxCRS` -- the paper's
  (1/4)-approximation algorithm (Algorithm 3), built on top of ExactMaxRS.
* :mod:`repro.circles.shifting` -- the shifted candidate points of Figure 9
  and the admissible shift-distance interval of Lemma 5.
* :mod:`repro.circles.coverage` -- single-scan evaluation of candidate circle
  centres (in memory or over a disk-resident dataset).
* :mod:`repro.circles.exact_maxcrs` -- the classical ``O(n^2 log n)`` exact
  solver (angular sweep over circle intersections) used as the accuracy
  yardstick in the Figure 17 experiment.
"""

from repro.circles.approx_maxcrs import ApproxMaxCRS
from repro.circles.coverage import (
    best_candidate,
    coverage_of_candidates,
    coverage_of_candidates_file,
)
from repro.circles.exact_maxcrs import exact_maxcrs
from repro.circles.shifting import (
    candidate_points,
    default_shift_distance,
    shift_distance_bounds,
    shifted_points,
)

__all__ = [
    "ApproxMaxCRS",
    "best_candidate",
    "candidate_points",
    "coverage_of_candidates",
    "coverage_of_candidates_file",
    "default_shift_distance",
    "exact_maxcrs",
    "shift_distance_bounds",
    "shifted_points",
]

"""Shifted candidate points of ApproxMaxCRS (Figure 9 of the paper).

After ExactMaxRS (run on the ``d x d`` MBRs of the transformed circles)
returns the centre ``p0`` of its max-region, ApproxMaxCRS evaluates four
additional candidate centres ``p1 .. p4`` obtained by shifting ``p0``
diagonally by a distance ``sigma``.  Lemma 5 requires

    (sqrt(2) - 1) * d/2  <  sigma  <  d/2

so that the four circles of diameter ``d`` centred at the shifted points
jointly cover the whole MBR ``r0`` -- the property that yields the
(1/4)-approximation guarantee (Theorem 3).

The default shift distance used here is ``sigma = sqrt(2) * d / 4``, which
places the shifted points exactly at the centres of the four quadrants of
``r0`` and sits strictly inside the admissible range.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError
from repro.geometry import Point

__all__ = [
    "default_shift_distance",
    "shift_distance_bounds",
    "shifted_points",
    "candidate_points",
]


def shift_distance_bounds(diameter: float) -> tuple[float, float]:
    """Return the open interval of admissible shift distances for ``diameter``."""
    if diameter <= 0:
        raise ConfigurationError(f"diameter must be positive, got {diameter}")
    return ((math.sqrt(2.0) - 1.0) * diameter / 2.0, diameter / 2.0)


def default_shift_distance(diameter: float) -> float:
    """The library's default shift distance ``sigma = sqrt(2) d / 4``.

    This value puts the shifted points at the quadrant centres of the MBR and
    always satisfies Lemma 5's bounds.
    """
    lower, upper = shift_distance_bounds(diameter)
    sigma = math.sqrt(2.0) * diameter / 4.0
    # Guard against floating rounding at the extremes (cannot happen for the
    # analytic value, but keeps the invariant explicit).
    return min(max(sigma, math.nextafter(lower, upper)), math.nextafter(upper, lower))


def shifted_points(p0: Point, diameter: float, sigma: float | None = None) -> List[Point]:
    """Return the four diagonally shifted candidate points ``p1 .. p4``.

    Parameters
    ----------
    p0:
        The centre of the max-region returned by ExactMaxRS on the MBRs.
    diameter:
        The circle diameter ``d`` of the MaxCRS instance.
    sigma:
        Shift distance; defaults to :func:`default_shift_distance`.  Values
        outside Lemma 5's open interval raise
        :class:`~repro.errors.ConfigurationError`, because the approximation
        guarantee would no longer hold.
    """
    lower, upper = shift_distance_bounds(diameter)
    if sigma is None:
        sigma = default_shift_distance(diameter)
    if not lower < sigma < upper:
        raise ConfigurationError(
            f"shift distance {sigma} outside the admissible interval "
            f"({lower}, {upper}) for diameter {diameter}"
        )
    step = sigma / math.sqrt(2.0)
    return [
        Point(p0.x + step, p0.y + step),
        Point(p0.x + step, p0.y - step),
        Point(p0.x - step, p0.y - step),
        Point(p0.x - step, p0.y + step),
    ]


def candidate_points(p0: Point, diameter: float, sigma: float | None = None) -> List[Point]:
    """Return all five ApproxMaxCRS candidates: ``p0`` followed by ``p1 .. p4``."""
    return [p0, *shifted_points(p0, diameter, sigma)]

"""Moving datasets between Python objects, CSV files and the simulated disk.

Three representations are used across the library:

* plain Python lists of :class:`~repro.geometry.WeightedPoint` (generators,
  examples, tests);
* CSV files on the host filesystem (so users can bring their own data, and so
  examples can persist what they generate);
* object record files on the simulated disk (what the external-memory
  algorithms actually consume, and where their input I/O is charged).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List

from repro.core.transform import write_objects_file
from repro.em.context import EMContext
from repro.em.record_file import RecordFile
from repro.errors import DatasetError
from repro.geometry import WeightedPoint

__all__ = ["dataset_to_em_file", "save_csv", "load_csv"]


def dataset_to_em_file(ctx: EMContext, objects: Iterable[WeightedPoint],
                       name: str = "dataset") -> RecordFile:
    """Write a dataset to the simulated disk as an object record file.

    This is the loading step every experiment performs *before* resetting the
    I/O counters, so that an algorithm's measured cost starts from a
    disk-resident dataset (as in the paper) rather than including the load.
    """
    return write_objects_file(ctx, objects, name=name)


def save_csv(path: str | Path, objects: Iterable[WeightedPoint]) -> int:
    """Write objects to a CSV file with header ``x,y,weight``.

    Returns the number of rows written.
    """
    target = Path(path)
    count = 0
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "weight"])
        for obj in objects:
            writer.writerow([repr(obj.x), repr(obj.y), repr(obj.weight)])
            count += 1
    return count


def load_csv(path: str | Path) -> List[WeightedPoint]:
    """Load objects from a CSV file produced by :func:`save_csv`.

    A missing ``weight`` column defaults to 1.0.  Raises
    :class:`~repro.errors.DatasetError` on malformed rows.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"dataset file {source} does not exist")
    objects: List[WeightedPoint] = []
    with source.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "x" not in reader.fieldnames \
                or "y" not in reader.fieldnames:
            raise DatasetError(f"dataset file {source} lacks x/y columns")
        for line_number, row in enumerate(reader, start=2):
            try:
                weight = float(row.get("weight", 1.0) or 1.0)
                objects.append(WeightedPoint(float(row["x"]), float(row["y"]), weight))
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"malformed row {line_number} in {source}: {row!r}"
                ) from exc
    return objects

"""Synthetic dataset generators (uniform and Gaussian).

Section 7.1 of the paper: "We first generate synthetic datasets under uniform
distribution and Gaussian distribution.  We set the cardinalities of dataset
(i.e., |O|) to be from 100,000 to 500,000 (default 250,000).  The range of
each coordinate is set to be [0, 4|O|] (default [0, 1000000])."

Both generators are deterministic given a seed (NumPy ``default_rng``), clip
to the requested domain, and by default produce unit weights (the paper's
setting); ``weighted=True`` draws small integer weights instead so the
weighted code paths get exercised too.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.spec import DEFAULT_DOMAIN, DatasetSpec, Distribution
from repro.errors import DatasetError
from repro.geometry import WeightedPoint

__all__ = ["generate_uniform", "generate_gaussian", "generate_from_spec"]

#: Number of Gaussian clusters used by the Gaussian generator.
_GAUSSIAN_CLUSTERS = 10

#: Cluster spread as a fraction of the domain extent.
_GAUSSIAN_SPREAD = 0.05


def generate_uniform(cardinality: int, *, domain: float = DEFAULT_DOMAIN,
                     seed: int = 7, weighted: bool = False) -> List[WeightedPoint]:
    """Generate ``cardinality`` uniformly distributed objects in ``[0, domain]^2``."""
    _validate(cardinality, domain)
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, domain, size=cardinality)
    ys = rng.uniform(0.0, domain, size=cardinality)
    weights = _weights(rng, cardinality, weighted)
    return _assemble(xs, ys, weights)


def generate_gaussian(cardinality: int, *, domain: float = DEFAULT_DOMAIN,
                      seed: int = 7, weighted: bool = False,
                      clusters: int = _GAUSSIAN_CLUSTERS) -> List[WeightedPoint]:
    """Generate Gaussian-clustered objects in ``[0, domain]^2``.

    Points are drawn around ``clusters`` cluster centres (themselves uniform
    in the domain) with an isotropic spread of ``5%`` of the domain, then
    clipped to the domain.  This mirrors the skewed, hot-spot-heavy spatial
    distributions the paper's Gaussian workload stands for.
    """
    _validate(cardinality, domain)
    if clusters < 1:
        raise DatasetError(f"need at least one cluster, got {clusters}")
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0.15 * domain, 0.85 * domain, size=(clusters, 2))
    assignment = rng.integers(0, clusters, size=cardinality)
    spread = _GAUSSIAN_SPREAD * domain
    xs = centres[assignment, 0] + rng.normal(0.0, spread, size=cardinality)
    ys = centres[assignment, 1] + rng.normal(0.0, spread, size=cardinality)
    xs = np.clip(xs, 0.0, domain)
    ys = np.clip(ys, 0.0, domain)
    weights = _weights(rng, cardinality, weighted)
    return _assemble(xs, ys, weights)


def generate_from_spec(spec: DatasetSpec) -> List[WeightedPoint]:
    """Generate the synthetic dataset described by ``spec``.

    Raises
    ------
    DatasetError
        If the spec describes one of the real-dataset stand-ins (use
        :func:`repro.datasets.real.generate_real` or the top-level
        :func:`repro.datasets.load_dataset` for those).
    """
    if spec.distribution is Distribution.UNIFORM:
        return generate_uniform(spec.cardinality, domain=spec.domain,
                                seed=spec.seed, weighted=spec.weighted)
    if spec.distribution is Distribution.GAUSSIAN:
        return generate_gaussian(spec.cardinality, domain=spec.domain,
                                 seed=spec.seed, weighted=spec.weighted)
    raise DatasetError(
        f"spec {spec.name!r} is not a synthetic distribution; use load_dataset()"
    )


# ---------------------------------------------------------------------- #
# Internal helpers
# ---------------------------------------------------------------------- #
def _validate(cardinality: int, domain: float) -> None:
    if cardinality < 0:
        raise DatasetError(f"cardinality must be non-negative, got {cardinality}")
    if domain <= 0:
        raise DatasetError(f"domain must be positive, got {domain}")


def _weights(rng: np.random.Generator, cardinality: int,
             weighted: bool) -> Optional[np.ndarray]:
    if not weighted:
        return None
    return rng.integers(1, 5, size=cardinality).astype(np.float64)


def _assemble(xs: np.ndarray, ys: np.ndarray,
              weights: Optional[np.ndarray]) -> List[WeightedPoint]:
    if weights is None:
        return [WeightedPoint(float(x), float(y)) for x, y in zip(xs, ys)]
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(xs, ys, weights)]

"""Workload generators and dataset plumbing for the empirical study.

* :mod:`repro.datasets.synthetic` -- the uniform and Gaussian synthetic
  workloads of Figures 12--14.
* :mod:`repro.datasets.real` -- deterministic stand-ins for the UX and NE real
  datasets of Table 2 and Figures 15--17 (see DESIGN.md for the substitution
  rationale).
* :mod:`repro.datasets.spec` -- hashable workload descriptions.
* :mod:`repro.datasets.io` -- CSV import/export and loading onto the simulated
  disk.

:func:`load_dataset` is the one-stop entry point the experiment harness uses:
give it a :class:`~repro.datasets.spec.DatasetSpec` of any distribution family
and it returns the objects.
"""

from typing import List

from repro.datasets.io import dataset_to_em_file, load_csv, save_csv
from repro.datasets.real import (
    NE_CARDINALITY,
    UX_CARDINALITY,
    generate_ne,
    generate_real,
    generate_ux,
)
from repro.datasets.spec import DEFAULT_DOMAIN, DatasetSpec, Distribution
from repro.datasets.synthetic import (
    generate_from_spec,
    generate_gaussian,
    generate_uniform,
)
from repro.geometry import WeightedPoint

__all__ = [
    "DEFAULT_DOMAIN",
    "DatasetSpec",
    "Distribution",
    "NE_CARDINALITY",
    "UX_CARDINALITY",
    "dataset_to_em_file",
    "generate_from_spec",
    "generate_gaussian",
    "generate_ne",
    "generate_real",
    "generate_uniform",
    "generate_ux",
    "load_csv",
    "load_dataset",
    "save_csv",
]


def load_dataset(spec: DatasetSpec) -> List[WeightedPoint]:
    """Generate the dataset described by ``spec``, whatever its family."""
    if spec.distribution in (Distribution.UNIFORM, Distribution.GAUSSIAN):
        return generate_from_spec(spec)
    return generate_real(spec)

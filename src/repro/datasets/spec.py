"""Dataset specifications.

Every workload of the empirical study is described by a :class:`DatasetSpec`:
its distribution family, cardinality, coordinate domain and random seed.
Specs are hashable value objects, so experiment results can be keyed by the
exact workload that produced them and regenerating a dataset from its spec is
always deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import DatasetError

__all__ = ["Distribution", "DatasetSpec", "DEFAULT_DOMAIN"]

#: The paper's normalized coordinate domain: ``[0, 1,000,000]`` per axis.
DEFAULT_DOMAIN = 1_000_000.0


class Distribution(str, Enum):
    """Distribution families used in Section 7."""

    #: Synthetic, uniformly distributed points (Figure 12b, 13b, 14b).
    UNIFORM = "uniform"
    #: Synthetic, Gaussian-clustered points (Figure 12a, 13a, 14a).
    GAUSSIAN = "gaussian"
    #: Stand-in for the real "United States and Mexico" dataset (Table 2).
    UX = "ux"
    #: Stand-in for the real "North East" dataset (Table 2).
    NE = "ne"


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A reproducible description of one workload.

    Parameters
    ----------
    distribution:
        The distribution family.
    cardinality:
        Number of objects ``|O|``.
    domain:
        Upper bound of the square coordinate domain ``[0, domain]^2``.
    seed:
        Seed of the deterministic generator.
    weighted:
        When ``True`` objects carry integer weights in ``[1, 4]``; when
        ``False`` (the paper's experiments) every weight is 1.
    """

    distribution: Distribution
    cardinality: int
    domain: float = DEFAULT_DOMAIN
    seed: int = 7
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise DatasetError(f"cardinality must be non-negative, got {self.cardinality}")
        if self.domain <= 0:
            raise DatasetError(f"domain must be positive, got {self.domain}")

    @property
    def name(self) -> str:
        """A short human-readable identifier, e.g. ``uniform-250000``."""
        return f"{self.distribution.value}-{self.cardinality}"

    def scaled(self, factor: float) -> "DatasetSpec":
        """Return a copy with the cardinality scaled by ``factor`` (min 1).

        The benchmark suite uses this to shrink the paper's workloads to sizes
        that run in seconds while keeping every other parameter identical.
        """
        if factor <= 0:
            raise DatasetError(f"scale factor must be positive, got {factor}")
        new_cardinality = max(1, int(round(self.cardinality * factor)))
        return DatasetSpec(
            distribution=self.distribution,
            cardinality=new_cardinality,
            domain=self.domain,
            seed=self.seed,
            weighted=self.weighted,
        )

"""Stand-ins for the paper's real datasets (UX and NE).

The paper evaluates on two real point sets downloaded from the R-tree Portal
(Table 2): **UX** -- "United States of America and Mexico", 19,499 points --
and **NE** -- "North East", 123,593 points -- both normalized to the
``[0, 1,000,000]^2`` domain.  The portal datasets are not redistributable with
this reproduction and the environment has no network access, so this module
generates deterministic synthetic stand-ins that preserve the properties the
experiments actually depend on (see DESIGN.md, substitution table):

* the exact cardinalities of Table 2;
* the normalized domain;
* the qualitative density structure: UX is small and sparse -- population
  centres scattered over a wide area with large empty regions ("a macro view
  of NE" as the paper puts it) -- while NE is six times denser and heavily
  concentrated along a coastal band with strong urban clusters.

Both generators are deterministic for a given seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.spec import DEFAULT_DOMAIN, DatasetSpec, Distribution
from repro.errors import DatasetError
from repro.geometry import WeightedPoint

__all__ = ["UX_CARDINALITY", "NE_CARDINALITY", "generate_ux", "generate_ne",
           "generate_real"]

#: Cardinality of the UX dataset (Table 2 of the paper).
UX_CARDINALITY = 19_499

#: Cardinality of the NE dataset (Table 2 of the paper).
NE_CARDINALITY = 123_593


def generate_ux(cardinality: int = UX_CARDINALITY, *,
                domain: float = DEFAULT_DOMAIN, seed: int = 17,
                weighted: bool = False) -> List[WeightedPoint]:
    """Generate the UX stand-in: sparse, widely scattered population centres.

    Roughly 60% of the points belong to a few dozen compact clusters (cities)
    whose centres are spread over the whole domain; the remaining 40% are
    low-density background spread along broad corridors, leaving large empty
    areas -- the overall look of a continent-scale populated-places dataset.
    """
    return _clustered(cardinality, domain=domain, seed=seed, weighted=weighted,
                      clusters=40, cluster_fraction=0.6,
                      cluster_spread=0.012, background="uniform")


def generate_ne(cardinality: int = NE_CARDINALITY, *,
                domain: float = DEFAULT_DOMAIN, seed: int = 19,
                weighted: bool = False) -> List[WeightedPoint]:
    """Generate the NE stand-in: dense points concentrated along a coastal band.

    Roughly 75% of the points form many tight urban clusters whose centres lie
    along a diagonal band (the north-east corridor); the rest fills the band
    more diffusely.  The result is much denser than UX over the same domain,
    which is what drives the UX-vs-NE differences in Figures 15 and 16.
    """
    return _clustered(cardinality, domain=domain, seed=seed, weighted=weighted,
                      clusters=120, cluster_fraction=0.75,
                      cluster_spread=0.006, background="band")


def generate_real(spec: DatasetSpec) -> List[WeightedPoint]:
    """Generate the real-dataset stand-in described by ``spec``."""
    if spec.distribution is Distribution.UX:
        return generate_ux(spec.cardinality, domain=spec.domain, seed=spec.seed,
                           weighted=spec.weighted)
    if spec.distribution is Distribution.NE:
        return generate_ne(spec.cardinality, domain=spec.domain, seed=spec.seed,
                           weighted=spec.weighted)
    raise DatasetError(f"spec {spec.name!r} is not a real-dataset stand-in")


# ---------------------------------------------------------------------- #
# Internal helpers
# ---------------------------------------------------------------------- #
def _clustered(cardinality: int, *, domain: float, seed: int, weighted: bool,
               clusters: int, cluster_fraction: float, cluster_spread: float,
               background: str) -> List[WeightedPoint]:
    if cardinality < 0:
        raise DatasetError(f"cardinality must be non-negative, got {cardinality}")
    if domain <= 0:
        raise DatasetError(f"domain must be positive, got {domain}")
    if cardinality == 0:
        return []
    rng = np.random.default_rng(seed)

    clustered_count = int(cardinality * cluster_fraction)
    background_count = cardinality - clustered_count

    if background == "band":
        # Cluster centres along a diagonal band with mild perpendicular jitter.
        positions = rng.uniform(0.05, 0.95, size=clusters)
        offsets = rng.normal(0.0, 0.06, size=clusters)
        centre_x = np.clip(positions + offsets, 0.02, 0.98) * domain
        centre_y = np.clip(positions - offsets, 0.02, 0.98) * domain
    else:
        centre_x = rng.uniform(0.05 * domain, 0.95 * domain, size=clusters)
        centre_y = rng.uniform(0.05 * domain, 0.95 * domain, size=clusters)

    # Cluster sizes follow a heavy-ish tail so a few "metros" dominate.
    raw_sizes = rng.pareto(1.5, size=clusters) + 0.5
    probabilities = raw_sizes / raw_sizes.sum()
    assignment = rng.choice(clusters, size=clustered_count, p=probabilities)
    spread = cluster_spread * domain
    xs = centre_x[assignment] + rng.normal(0.0, spread, size=clustered_count)
    ys = centre_y[assignment] + rng.normal(0.0, spread, size=clustered_count)

    if background == "band":
        positions = rng.uniform(0.0, 1.0, size=background_count)
        offsets = rng.normal(0.0, 0.08, size=background_count)
        bx = np.clip(positions + offsets, 0.0, 1.0) * domain
        by = np.clip(positions - offsets, 0.0, 1.0) * domain
    else:
        bx = rng.uniform(0.0, domain, size=background_count)
        by = rng.uniform(0.0, domain, size=background_count)

    all_x = np.clip(np.concatenate([xs, bx]), 0.0, domain)
    all_y = np.clip(np.concatenate([ys, by]), 0.0, domain)
    order = rng.permutation(cardinality)
    all_x = all_x[order]
    all_y = all_y[order]

    if weighted:
        weights = rng.integers(1, 5, size=cardinality).astype(np.float64)
        return [WeightedPoint(float(x), float(y), float(w))
                for x, y, w in zip(all_x, all_y, weights)]
    return [WeightedPoint(float(x), float(y)) for x, y in zip(all_x, all_y)]

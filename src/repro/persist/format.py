"""On-disk format of the durable snapshot store.

Two kinds of files live in a persist directory (see the package docstring in
:mod:`repro.persist` for the full layout):

* **Blob files** (``*.points``, ``*.grid``) hold the raw blocks of one
  columnar :class:`~repro.em.record_file.RecordFile`, exactly as they existed
  on the simulated :class:`~repro.em.device.BlockDevice`, behind a fixed
  64-byte header::

      magic (8 B) | block_size (u64) | num_blocks (u64) | num_records (u64)
                  | sha256 of the padded block payload (32 B)

    Every block is padded to ``block_size`` bytes, so block ``i`` starts at
    byte ``64 + i * block_size`` and the whole payload is one contiguous
    little-endian float64 stream (columnar layout, one column after another).
    The checksum rejects torn or bit-flipped files before any record is
    decoded; the magic's trailing byte is the blob format version.

* **The catalog** (``catalog.json``) is the manifest: a versioned JSON
  document mapping every ``dataset_id`` to its fingerprint, record counts,
  codec name, blob file names and (optionally) the persisted grid-index
  geometry.  The catalog is rewritten atomically (temp file + ``os.replace``)
  on every save or delete, so a crash mid-write never leaves a half-updated
  manifest -- at worst an orphaned blob, which a later save overwrites.

This module knows nothing about the service layer: it deals in numpy columns,
dataclasses and bytes, so the same machinery can back future sharded or
replicated deployments.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.em.serializer import StructRecordCodec
from repro.errors import PersistError
from repro.geometry import WeightedPoint

__all__ = [
    "BLOB_MAGIC",
    "CATALOG_FILENAME",
    "CATALOG_VERSION",
    "SUPPORTED_CATALOG_VERSIONS",
    "POINTS_CODEC_NAME",
    "RESULT_CODEC",
    "DatasetManifest",
    "GridLevelManifest",
    "GridLevelSnapshot",
    "GridManifest",
    "GridShardManifest",
    "GridShardSnapshot",
    "GridSnapshot",
    "ShardedGridSnapshot",
    "SnapshotCatalog",
    "fingerprint_columns",
    "load_catalog",
    "points_from_columns",
    "read_blob",
    "save_catalog",
    "write_blob",
]

#: Blob file magic; the trailing byte is the blob format version.
BLOB_MAGIC = b"RPSNAP\x00\x01"

#: Fixed blob header: magic, block size, block count, record count, checksum.
_BLOB_HEADER = struct.Struct("<8sQQQ32s")

#: Name of the manifest file inside a persist directory.
CATALOG_FILENAME = "catalog.json"

#: Catalog format version this build writes.  Version 2 added sharded grid
#: manifests (one blob per shard); version 3 added grid-pyramid level blobs
#: (one checksummed blob per coarse level).  Version-1 catalogs (a single
#: grid blob per dataset) are still read and their grids adopted as 1-shard
#: indexes; v1/v2 catalogs restore as 1-level (flat) pyramids.
CATALOG_VERSION = 3

#: Catalog format versions this build can read.
SUPPORTED_CATALOG_VERSIONS = (1, 2, 3)

#: Codec identifier recorded in every manifest entry.  Bump alongside any
#: change to the column encoding so old stores are rejected, not misread.
POINTS_CODEC_NAME = "f64-column/1"

#: Codec for persisted hot refined-MaxRS results (``*.results`` blobs): one
#: record per cached answer --
#: ``(width, height, loc_x, loc_y, x1, y1, x2, y2, region_weight,
#: total_weight, recursion_levels, leaf_count, cost)``.
#: All-doubles so the round trip is bit-exact and the record size (104 B,
#: 39 records per 4 KB block) is platform independent.
RESULT_CODEC = StructRecordCodec("<13d")


def fingerprint_columns(xs: np.ndarray, ys: np.ndarray, ws: np.ndarray) -> str:
    """Hex SHA-256 over the packed little-endian float64 columns.

    This is *the* dataset identity of the serving stack: the
    :class:`~repro.service.store.PointStore` keys its result cache with it and
    the snapshot store verifies it on every load, so a snapshot that decodes
    to different bytes than were saved can never be served.
    """
    digest = hashlib.sha256()
    for column in (xs, ys, ws):
        digest.update(np.ascontiguousarray(column, dtype="<f8").tobytes())
    return digest.hexdigest()


def points_from_columns(xs: np.ndarray, ys: np.ndarray, ws: np.ndarray,
                        indices=None) -> List[WeightedPoint]:
    """Materialise :class:`~repro.geometry.WeightedPoint` objects from columns.

    The one place column values become point objects, shared by the snapshot
    loader and the lazy paths of the service's
    :class:`~repro.service.store.RegisteredDataset`.  ``indices`` selects a
    subset (in the given order); ``None`` materialises every point.
    """
    if indices is None:
        return [WeightedPoint(float(x), float(y), float(w))
                for x, y, w in zip(xs, ys, ws)]
    return [WeightedPoint(float(xs[i]), float(ys[i]), float(ws[i]))
            for i in indices]


# ---------------------------------------------------------------------- #
# Blob files
# ---------------------------------------------------------------------- #
def write_blob(path: Path, *, block_size: int, payloads: Sequence[bytes],
               num_records: int) -> None:
    """Write a blob file atomically (temp file + rename).

    ``payloads`` are the raw block images in file order; each may be shorter
    than ``block_size`` (a trailing partial block) and is zero-padded so the
    on-disk blocks are fixed size.
    """
    body = b"".join(payload.ljust(block_size, b"\x00") for payload in payloads)
    header = _BLOB_HEADER.pack(BLOB_MAGIC, block_size, len(payloads),
                               num_records, hashlib.sha256(body).digest())
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(body)
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def read_blob(path: Path) -> Tuple[int, int, List[bytes]]:
    """Read and verify a blob file; return ``(block_size, num_records, blocks)``.

    Raises
    ------
    PersistError
        If the file is missing, truncated, carries the wrong magic/version,
        or its payload checksum does not match the header.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise PersistError(f"cannot read snapshot blob {path}: {exc}") from exc
    if len(raw) < _BLOB_HEADER.size:
        raise PersistError(f"snapshot blob {path} is truncated "
                           f"({len(raw)} B < {_BLOB_HEADER.size} B header)")
    magic, block_size, num_blocks, num_records, digest = _BLOB_HEADER.unpack(
        raw[:_BLOB_HEADER.size])
    if magic != BLOB_MAGIC:
        raise PersistError(
            f"snapshot blob {path} has magic {magic!r}, expected {BLOB_MAGIC!r} "
            "(corrupt file or incompatible blob format version)"
        )
    body = raw[_BLOB_HEADER.size:]
    if len(body) != num_blocks * block_size:
        raise PersistError(
            f"snapshot blob {path} is truncated: header promises "
            f"{num_blocks} x {block_size} B, found {len(body)} B"
        )
    if hashlib.sha256(body).digest() != digest:
        raise PersistError(f"snapshot blob {path} fails its checksum; "
                           "rejecting the corrupt snapshot")
    blocks = [body[i * block_size:(i + 1) * block_size]
              for i in range(num_blocks)]
    return block_size, num_records, blocks


# ---------------------------------------------------------------------- #
# Manifest dataclasses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class GridLevelSnapshot:
    """The persistable state of one coarse grid-pyramid level (format v3).

    ``scale`` base cells fold into one level cell per axis; the aggregate
    arrays have the level's own (coarser) shape.  Levels are stored as their
    own checksummed blobs and verified against a fresh roll-up of the level
    below on load, so a corrupt or stale level can never loosen a bound.
    """

    scale: int
    n_rows: int
    n_cols: int
    cell_weights: np.ndarray  # float64, shape (n_rows, n_cols)
    cell_counts: np.ndarray   # int64,  shape (n_rows, n_cols)


@dataclass(frozen=True, slots=True)
class GridSnapshot:
    """The persistable state of one :class:`~repro.service.grid_index.GridIndex`.

    Geometry plus the per-cell aggregates (base grid and, since format v3,
    the coarse pyramid levels).  The CSR point lists and the prefix-sum
    tables are *not* persisted -- they are rebuilt from the point columns in
    vectorised time on load, and recomputing the per-cell counts doubles as
    a structural consistency check against the persisted ones.
    """

    n_rows: int
    n_cols: int
    x0: float
    y0: float
    cell_w: float
    cell_h: float
    cell_weights: np.ndarray  # float64, shape (n_rows, n_cols)
    cell_counts: np.ndarray   # int64,  shape (n_rows, n_cols)
    levels: Tuple[GridLevelSnapshot, ...] = ()


@dataclass(frozen=True, slots=True)
class GridShardSnapshot:
    """The persistable state of one shard: its cell block plus aggregates.

    ``row0:row1`` / ``col0:col1`` is the shard's half-open block of **global**
    grid cells; the aggregate arrays have the block's shape.  The blocks of a
    :class:`ShardedGridSnapshot` tile the global grid exactly -- loaders
    verify that before adopting a persisted layout.
    """

    row0: int
    row1: int
    col0: int
    col1: int
    cell_weights: np.ndarray  # float64, shape (row1-row0, col1-col0)
    cell_counts: np.ndarray   # int64,  shape (row1-row0, col1-col0)


@dataclass(frozen=True, slots=True)
class ShardedGridSnapshot:
    """Format-v2 grid state: one global geometry, one aggregate block per shard.

    The sharded sibling of :class:`GridSnapshot`.  Each shard's aggregates are
    persisted (and restored) as their own blob so a warm start can rebuild
    shard partitions in parallel.
    """

    n_rows: int
    n_cols: int
    x0: float
    y0: float
    cell_w: float
    cell_h: float
    shards: Tuple[GridShardSnapshot, ...]
    levels: Tuple[GridLevelSnapshot, ...] = ()

    @classmethod
    def from_single(cls, snap: GridSnapshot) -> "ShardedGridSnapshot":
        """Adopt a single-grid snapshot as a 1-shard layout."""
        return cls(
            n_rows=snap.n_rows, n_cols=snap.n_cols,
            x0=snap.x0, y0=snap.y0, cell_w=snap.cell_w, cell_h=snap.cell_h,
            shards=(GridShardSnapshot(
                row0=0, row1=snap.n_rows, col0=0, col1=snap.n_cols,
                cell_weights=snap.cell_weights,
                cell_counts=snap.cell_counts),),
            levels=snap.levels,
        )

    def tiles_exactly(self) -> bool:
        """Whether the shard blocks partition the global grid exactly."""
        coverage = np.zeros((self.n_rows, self.n_cols), dtype=np.int64)
        for shard in self.shards:
            if not (0 <= shard.row0 < shard.row1 <= self.n_rows
                    and 0 <= shard.col0 < shard.col1 <= self.n_cols):
                return False
            coverage[shard.row0:shard.row1, shard.col0:shard.col1] += 1
        return bool((coverage == 1).all())


@dataclass(frozen=True, slots=True)
class GridShardManifest:
    """Catalog entry describing one shard's grid blob and cell block."""

    file: str
    row0: int
    row1: int
    col0: int
    col1: int

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "row0": self.row0, "row1": self.row1,
                "col0": self.col0, "col1": self.col1}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "GridShardManifest":
        try:
            return cls(file=str(data["file"]),
                       row0=int(data["row0"]), row1=int(data["row1"]),
                       col0=int(data["col0"]), col1=int(data["col1"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(f"malformed grid shard manifest entry: {exc}") from exc


@dataclass(frozen=True, slots=True)
class GridLevelManifest:
    """Catalog entry describing one pyramid level's blob (format v3)."""

    file: str
    scale: int
    n_rows: int
    n_cols: int

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "scale": self.scale,
                "n_rows": self.n_rows, "n_cols": self.n_cols}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "GridLevelManifest":
        try:
            return cls(file=str(data["file"]), scale=int(data["scale"]),
                       n_rows=int(data["n_rows"]), n_cols=int(data["n_cols"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(f"malformed grid level manifest entry: {exc}") from exc


@dataclass(frozen=True, slots=True)
class GridManifest:
    """Catalog entry describing one persisted grid index.

    Two base layouts share this entry: the version-1 single-blob grid
    (``file`` set, ``shards`` ``None``) and the version-2 sharded grid
    (``shards`` set, ``file`` ``None``).  Exactly one of the two must be
    present.  ``levels`` (format v3) is orthogonal to the base layout: the
    pyramid rolls up from the *global* aggregates, so either layout may
    carry level blobs (finest first).
    """

    file: Optional[str]
    n_rows: int
    n_cols: int
    x0: float
    y0: float
    cell_w: float
    cell_h: float
    shards: Optional[Tuple[GridShardManifest, ...]] = None
    levels: Optional[Tuple[GridLevelManifest, ...]] = None

    def files(self) -> Tuple[str, ...]:
        """Every blob file this grid entry references."""
        base: Tuple[str, ...]
        if self.shards is not None:
            base = tuple(shard.file for shard in self.shards)
        else:
            base = (self.file,) if self.file is not None else ()
        if self.levels:
            base += tuple(level.file for level in self.levels)
        return base

    def to_json(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "file": self.file, "n_rows": self.n_rows, "n_cols": self.n_cols,
            "x0": self.x0, "y0": self.y0,
            "cell_w": self.cell_w, "cell_h": self.cell_h,
        }
        if self.shards is not None:
            document["shards"] = [shard.to_json() for shard in self.shards]
        if self.levels:
            document["levels"] = [level.to_json() for level in self.levels]
        return document

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "GridManifest":
        try:
            raw_shards = data.get("shards")
            shards = None
            if raw_shards is not None:
                if not isinstance(raw_shards, list) or not raw_shards:
                    raise ValueError("'shards' must be a non-empty list")
                shards = tuple(GridShardManifest.from_json(entry)
                               for entry in raw_shards)
            raw_levels = data.get("levels")
            levels = None
            if raw_levels is not None:
                if not isinstance(raw_levels, list) or not raw_levels:
                    raise ValueError("'levels' must be a non-empty list")
                levels = tuple(GridLevelManifest.from_json(entry)
                               for entry in raw_levels)
            raw_file = data.get("file")
            file = str(raw_file) if raw_file is not None else None
            if (file is None) == (shards is None):
                raise ValueError(
                    "exactly one of 'file' and 'shards' must be present"
                )
            return cls(file=file,
                       n_rows=int(data["n_rows"]), n_cols=int(data["n_cols"]),
                       x0=float(data["x0"]), y0=float(data["y0"]),
                       cell_w=float(data["cell_w"]), cell_h=float(data["cell_h"]),
                       shards=shards, levels=levels)
        except PersistError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(f"malformed grid manifest entry: {exc}") from exc


@dataclass(frozen=True, slots=True)
class DatasetManifest:
    """Catalog entry describing one persisted dataset snapshot."""

    dataset_id: str
    fingerprint: str
    count: int
    total_weight: float
    codec: str
    block_size: int
    points_file: str
    grid: Optional[GridManifest] = None
    results_file: Optional[str] = None
    results_count: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "count": self.count,
            "total_weight": self.total_weight,
            "codec": self.codec,
            "block_size": self.block_size,
            "points_file": self.points_file,
            "grid": self.grid.to_json() if self.grid is not None else None,
            "results_file": self.results_file,
            "results_count": self.results_count,
        }

    @classmethod
    def from_json(cls, dataset_id: str, data: Dict[str, object]) -> "DatasetManifest":
        try:
            grid_data = data.get("grid")
            results_file = data.get("results_file")
            return cls(
                dataset_id=dataset_id,
                fingerprint=str(data["fingerprint"]),
                count=int(data["count"]),
                total_weight=float(data["total_weight"]),
                codec=str(data["codec"]),
                block_size=int(data["block_size"]),
                points_file=str(data["points_file"]),
                grid=GridManifest.from_json(grid_data) if grid_data else None,
                results_file=str(results_file) if results_file else None,
                results_count=int(data.get("results_count", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistError(
                f"malformed catalog entry for dataset {dataset_id!r}: {exc}"
            ) from exc


@dataclass(slots=True)
class SnapshotCatalog:
    """The manifest of a persist directory: ``dataset_id -> DatasetManifest``."""

    datasets: Dict[str, DatasetManifest] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.datasets)

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self.datasets

    def get(self, dataset_id: str) -> Optional[DatasetManifest]:
        return self.datasets.get(dataset_id)

    def references(self, file_name: str, *, excluding: Optional[str] = None) -> bool:
        """Whether any entry (except ``excluding``) references ``file_name``.

        Datasets with identical content share blob files, so deletion must
        check for remaining references before unlinking.
        """
        for dataset_id, manifest in self.datasets.items():
            if dataset_id == excluding:
                continue
            if manifest.points_file == file_name:
                return True
            if manifest.grid is not None and file_name in manifest.grid.files():
                return True
            if manifest.results_file == file_name:
                return True
        return False


def load_catalog(directory: Path) -> SnapshotCatalog:
    """Load the catalog of a persist directory (empty when none exists yet).

    Raises
    ------
    PersistError
        If the catalog exists but is unreadable, malformed, or written by a
        newer format version than this build understands.
    """
    path = Path(directory) / CATALOG_FILENAME
    if not path.exists():
        return SnapshotCatalog()
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise PersistError(f"cannot read snapshot catalog {path}: {exc}") from exc
    if not isinstance(document, dict) or "format_version" not in document:
        raise PersistError(f"snapshot catalog {path} is not a versioned manifest")
    version = document["format_version"]
    if version not in SUPPORTED_CATALOG_VERSIONS:
        raise PersistError(
            f"snapshot catalog {path} has format version {version}; this "
            f"build understands versions {SUPPORTED_CATALOG_VERSIONS}"
        )
    entries = document.get("datasets", {})
    if not isinstance(entries, dict):
        raise PersistError(f"snapshot catalog {path} has a malformed dataset map")
    return SnapshotCatalog(datasets={
        dataset_id: DatasetManifest.from_json(dataset_id, entry)
        for dataset_id, entry in entries.items()
    })


def save_catalog(directory: Path, catalog: SnapshotCatalog) -> None:
    """Atomically rewrite the catalog of a persist directory.

    The stamped format version is the *lowest* one that can express the
    catalog: a store whose grids are all single-blob (or absent) is written
    as version 1, so it stays readable by pre-sharding builds after a
    rollback; a catalog containing sharded grid entries but no pyramid
    levels is stamped version 2, and only one actually carrying level blobs
    is stamped version 3.
    """
    path = Path(directory) / CATALOG_FILENAME
    grids = [manifest.grid for manifest in catalog.datasets.values()
             if manifest.grid is not None]
    if any(grid.levels for grid in grids):
        version = CATALOG_VERSION
    elif any(grid.shards is not None for grid in grids):
        version = 2
    else:
        version = 1
    document = {
        "format_version": version,
        "datasets": {dataset_id: manifest.to_json()
                     for dataset_id, manifest in sorted(catalog.datasets.items())},
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)

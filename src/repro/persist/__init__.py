"""repro.persist -- durable dataset snapshots for the resident engine.

The paper's premise is that MaxRS at scale is I/O-bound, and :mod:`repro.em`
counts every block transfer faithfully -- yet a restarted
:class:`~repro.service.engine.MaxRSEngine` used to lose every registered
dataset and grid aggregate and re-ingest from scratch.  This package is the
missing persistence layer: it spills :class:`~repro.service.store.PointStore`
snapshots (packed ``(x, y, weight)`` columns plus their SHA-256 fingerprint)
and, optionally, each dataset's :class:`~repro.service.grid_index.GridIndex`
aggregates through the existing EM substrate, so **persistence I/O is
block-accounted the same way the paper counts transfers** (see
:attr:`SnapshotStore.counters`).

On-disk layout of a persist directory
-------------------------------------
::

    persist_dir/
        catalog.json            # versioned manifest (the SnapshotCatalog):
                                #   format_version, and per dataset_id its
                                #   fingerprint, count, total weight, codec
                                #   name, block size, blob file names and the
                                #   persisted grid geometry (resolution,
                                #   origin, cell sizes)
        <fp16>.points           # columnar blob: the x column, then the y
                                #   column, then the weight column, as raw
                                #   4 KB blocks of little-endian float64
                                #   (COLUMN_CODEC) behind a 64-byte header
                                #   with magic, sizes and a SHA-256 checksum
        <fp16>.grid             # optional columnar blob: the grid's flattened
                                #   cell-weight column then its cell-count
                                #   column, same container format
        <fp16>.results          # optional blob of hot refined-MaxRS results
                                #   (RESULT_CODEC records, written by the
                                #   engine's checkpoint()): the warm serving
                                #   state that lets a restart re-serve
                                #   previously answered queries without
                                #   re-solving them

    ``<fp16>`` is the first 16 hex digits of the dataset fingerprint, so
    byte-identical datasets registered under several ids share blob files;
    the catalog tracks references and deletion only unlinks unshared blobs.

Verification on load is layered: the blob checksum rejects torn or
bit-flipped files, the recomputed column fingerprint must match the catalog
(so a snapshot can never decode to different data than was saved), and grid
aggregates are structurally cross-checked against the reloaded points --
a bad grid blob falls back to an in-memory rebuild instead of failing the
restore.

Entry points: :func:`open_catalog` to inspect a directory,
:class:`SnapshotStore` (``save_dataset`` / ``load_dataset`` /
``delete_dataset``) for programmatic access, and
``MaxRSEngine(persist_dir=...)`` for the integrated write-through /
warm-start path most callers want.
"""

from repro.persist.format import (
    CATALOG_FILENAME,
    CATALOG_VERSION,
    POINTS_CODEC_NAME,
    RESULT_CODEC,
    SUPPORTED_CATALOG_VERSIONS,
    DatasetManifest,
    GridManifest,
    GridShardManifest,
    GridShardSnapshot,
    GridSnapshot,
    ShardedGridSnapshot,
    SnapshotCatalog,
    fingerprint_columns,
)
from repro.persist.store import LoadedSnapshot, SnapshotStore, open_catalog

__all__ = [
    "CATALOG_FILENAME",
    "CATALOG_VERSION",
    "SUPPORTED_CATALOG_VERSIONS",
    "POINTS_CODEC_NAME",
    "DatasetManifest",
    "GridManifest",
    "GridShardManifest",
    "GridShardSnapshot",
    "GridSnapshot",
    "LoadedSnapshot",
    "RESULT_CODEC",
    "ShardedGridSnapshot",
    "SnapshotCatalog",
    "SnapshotStore",
    "fingerprint_columns",
    "open_catalog",
]

"""The durable snapshot store: save/load datasets through the EM substrate.

:class:`SnapshotStore` is the write/read engine behind a persist directory.
All record traffic flows through a private :class:`~repro.em.context.EMContext`
(:class:`~repro.em.record_file.RecordFile` on a simulated
:class:`~repro.em.device.BlockDevice` behind the
:class:`~repro.em.buffer_pool.BufferPool`), so every save and load is charged
in **block transfers** on :attr:`SnapshotStore.counters` -- the same unit the
paper measures its algorithms in, which is what makes warm-start I/O directly
comparable to ingestion I/O.

Durability is a mirror, not a second code path: a save writes the columnar
record file block by block onto the simulated disk (each write charged), then
the finished block images are copied verbatim into a checksummed host blob
file; a load verifies the blob, installs its blocks back onto the simulated
disk for free (:meth:`~repro.em.device.BlockDevice.restore_block` -- the bytes
are already "on disk"), and reads them through the buffer pool, charging one
block read each.  Fingerprints are recomputed from the decoded columns on
every load, so a snapshot that decodes differently than it was saved is
rejected rather than served.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.em.codecs import COLUMN_CODEC
from repro.em.config import EMConfig
from repro.em.context import EMContext
from repro.em.counters import IOStats
from repro.errors import PersistError
from repro.geometry import WeightedPoint
from repro.em.serializer import RecordCodec
from repro.persist.format import (
    POINTS_CODEC_NAME,
    RESULT_CODEC,
    DatasetManifest,
    GridLevelManifest,
    GridLevelSnapshot,
    GridManifest,
    GridShardManifest,
    GridShardSnapshot,
    GridSnapshot,
    ShardedGridSnapshot,
    SnapshotCatalog,
    fingerprint_columns,
    load_catalog,
    points_from_columns,
    read_blob,
    save_catalog,
    write_blob,
)

__all__ = ["LoadedSnapshot", "SnapshotStore", "open_catalog"]


def open_catalog(persist_dir) -> SnapshotCatalog:
    """Read the manifest of a persist directory without opening a store.

    Cheap (one small JSON file, no block I/O); use it to inspect what a
    directory holds before deciding to restore.  Returns an empty catalog for
    a directory that exists but has never been saved to.
    """
    return load_catalog(Path(persist_dir))


@dataclass(frozen=True, slots=True)
class LoadedSnapshot:
    """One dataset read back from the snapshot store.

    ``grid`` is ``None`` when no grid was persisted *or* when the persisted
    grid blob failed verification -- the latter also sets ``grid_error`` so
    callers can report the fallback; the point columns themselves are always
    fingerprint-verified or the load raises.
    """

    manifest: DatasetManifest
    xs: np.ndarray
    ys: np.ndarray
    ws: np.ndarray
    #: A :class:`GridSnapshot` (format v1, single grid) or a
    #: :class:`ShardedGridSnapshot` (format v2, one aggregate block per shard).
    grid: Union[GridSnapshot, ShardedGridSnapshot, None]
    grid_error: Optional[str] = None

    def objects(self) -> List[WeightedPoint]:
        """Materialise the snapshot as a list of weighted points."""
        return points_from_columns(self.xs, self.ys, self.ws)


class SnapshotStore:
    """Durable dataset snapshots under one directory, I/O-accounted in blocks.

    Parameters
    ----------
    persist_dir:
        Directory holding the catalog and blob files; created if missing.
    config:
        External-memory configuration for the accounting substrate (block
        size, buffer size).  Defaults to the paper's (4 KB blocks).  Snapshots
        record their block size; loading one written with a different block
        size raises :class:`~repro.errors.PersistError` rather than silently
        re-chunking, so recorded transfer counts stay comparable.
    """

    def __init__(self, persist_dir, *, config: Optional[EMConfig] = None) -> None:
        self.root = Path(persist_dir)
        self.context = EMContext(config)
        # The directory is only created by the first *save*: pure read paths
        # (warm-start restore, MaxRSSolver.from_snapshot) must not turn a
        # mistyped persist_dir into a plausible-looking empty store.
        self.catalog = load_catalog(self.root)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> IOStats:
        """Block-transfer counters charged by every save and load."""
        return self.context.stats

    def dataset_ids(self) -> List[str]:
        """Ids of every dataset in the catalog (sorted for determinism)."""
        return sorted(self.catalog.datasets)

    def manifest_for(self, dataset_id: str) -> Optional[DatasetManifest]:
        """The catalog entry of one dataset (``None`` when absent)."""
        return self.catalog.get(dataset_id)

    def __len__(self) -> int:
        return len(self.catalog)

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self.catalog

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save_dataset(self, dataset_id: str, xs: np.ndarray, ys: np.ndarray,
                     ws: np.ndarray, *,
                     grid: Union[GridSnapshot, ShardedGridSnapshot,
                                 None] = None) -> DatasetManifest:
        """Persist one dataset's columns (and optionally its grid aggregates).

        ``grid`` may be a single-grid :class:`GridSnapshot` (persisted as one
        blob, the format-v1 layout) or a :class:`ShardedGridSnapshot`
        (persisted as **one blob per shard**, so a warm start can verify and
        adopt the shards in parallel).  Either kind may carry pyramid levels,
        persisted as one checksummed blob per coarse level (format v3).
        Overwrites any existing snapshot under ``dataset_id``.  Returns the
        new manifest; the catalog file is rewritten atomically.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        fingerprint = fingerprint_columns(xs, ys, ws)
        stem = fingerprint[:16]
        points_file = f"{stem}.points"
        self._write_columns(points_file, [xs, ys, ws])

        grid_manifest = None
        if isinstance(grid, ShardedGridSnapshot):
            grid_manifest = self._save_sharded_grid(stem, grid)
        elif grid is not None:
            # The resolution is part of the stem: byte-identical datasets
            # share points blobs, but grids indexed at different resolutions
            # are different content and must not clobber each other.
            grid_file = f"{stem}-{grid.n_rows}x{grid.n_cols}.grid"
            self._write_columns(
                grid_file,
                [grid.cell_weights.ravel(),
                 grid.cell_counts.ravel().astype(np.float64)],
            )
            grid_manifest = GridManifest(
                file=grid_file, n_rows=grid.n_rows, n_cols=grid.n_cols,
                x0=grid.x0, y0=grid.y0,
                cell_w=grid.cell_w, cell_h=grid.cell_h,
                levels=self._save_grid_levels(stem, grid),
            )

        # Re-saving byte-identical data keeps any persisted results (they are
        # keyed by the fingerprint and still valid); a new fingerprint drops
        # them -- results for data a name no longer means must not survive.
        previous = self.catalog.datasets.get(dataset_id)
        same_data = previous is not None and previous.fingerprint == fingerprint
        manifest = DatasetManifest(
            dataset_id=dataset_id,
            fingerprint=fingerprint,
            count=int(len(xs)),
            total_weight=float(ws.sum()) if len(ws) else 0.0,
            codec=POINTS_CODEC_NAME,
            block_size=self.context.config.block_size,
            points_file=points_file,
            grid=grid_manifest,
            results_file=previous.results_file if same_data else None,
            results_count=previous.results_count if same_data else 0,
        )
        self.catalog.datasets[dataset_id] = manifest
        save_catalog(self.root, self.catalog)
        if previous is not None:
            self._remove_orphaned_blobs(previous)
        return manifest

    def _save_sharded_grid(self, stem: str,
                           grid: ShardedGridSnapshot) -> GridManifest:
        """Write one aggregate blob per shard and return the v2 manifest.

        Each blob's name carries the global resolution *and* the shard's cell
        block, so grids indexed at different resolutions or partitioned
        differently are different content and never clobber each other.
        """
        shard_manifests = []
        for shard in grid.shards:
            shard_file = (f"{stem}-{grid.n_rows}x{grid.n_cols}"
                          f"-r{shard.row0}-{shard.row1}"
                          f"-c{shard.col0}-{shard.col1}.grid")
            self._write_columns(
                shard_file,
                [shard.cell_weights.ravel(),
                 shard.cell_counts.ravel().astype(np.float64)],
            )
            shard_manifests.append(GridShardManifest(
                file=shard_file, row0=shard.row0, row1=shard.row1,
                col0=shard.col0, col1=shard.col1))
        return GridManifest(
            file=None, n_rows=grid.n_rows, n_cols=grid.n_cols,
            x0=grid.x0, y0=grid.y0, cell_w=grid.cell_w, cell_h=grid.cell_h,
            shards=tuple(shard_manifests),
            levels=self._save_grid_levels(stem, grid),
        )

    def _save_grid_levels(self, stem: str,
                          grid: Union[GridSnapshot, ShardedGridSnapshot],
                          ) -> Optional[tuple]:
        """Write one aggregate blob per pyramid level (format v3).

        Level blobs reuse the grid blob layout (weights column, counts
        column) behind the same checksummed header, so every level gets its
        own integrity check.  The name carries the *base* resolution plus the
        level scale and shape: the same data rolled up under a different
        pyramid configuration is different content.
        """
        if not grid.levels:
            return None
        manifests = []
        for level in grid.levels:
            level_file = (f"{stem}-{grid.n_rows}x{grid.n_cols}"
                          f"-L{level.scale}-{level.n_rows}x{level.n_cols}.grid")
            self._write_columns(
                level_file,
                [level.cell_weights.ravel(),
                 level.cell_counts.ravel().astype(np.float64)],
            )
            manifests.append(GridLevelManifest(
                file=level_file, scale=level.scale,
                n_rows=level.n_rows, n_cols=level.n_cols))
        return tuple(manifests)

    def save_results(self, dataset_id: str,
                     records: List[tuple]) -> DatasetManifest:
        """Persist a dataset's hot refined-MaxRS results (may be empty).

        ``records`` are :data:`~repro.persist.format.RESULT_CODEC` tuples --
        the engine's ``checkpoint()`` builds them from its result cache.  An
        empty list clears any previously persisted results.  The dataset must
        already be in the catalog (results ride along with a snapshot, they
        are not standalone).
        """
        manifest = self.catalog.get(dataset_id)
        if manifest is None:
            raise PersistError(
                f"cannot persist results for {dataset_id!r}: the dataset has "
                "no snapshot in the catalog"
            )
        if not records and manifest.results_file is None:
            return manifest  # nothing persisted, nothing to clear
        self.root.mkdir(parents=True, exist_ok=True)
        previous = manifest
        results_file: Optional[str] = None
        if records:
            # Unlike points blobs, results are per-dataset-id state (each id
            # checkpoints its own hot set), so the stem carries an id hash:
            # two ids over byte-identical data must not clobber each other.
            id_hash = hashlib.sha256(dataset_id.encode("utf-8")).hexdigest()[:8]
            results_file = f"{manifest.fingerprint[:16]}-{id_hash}.results"
            self._write_records(results_file, RESULT_CODEC, records)
        manifest = dataclasses.replace(manifest, results_file=results_file,
                                       results_count=len(records))
        self.catalog.datasets[dataset_id] = manifest
        save_catalog(self.root, self.catalog)
        if previous.results_file is not None \
                and previous.results_file != results_file \
                and not self.catalog.references(previous.results_file):
            (self.root / previous.results_file).unlink(missing_ok=True)
        return manifest

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load_results(self, dataset_id: str) -> List[tuple]:
        """Read back a dataset's persisted hot results (empty when none).

        Raises
        ------
        PersistError
            When the dataset has no snapshot, or its results blob is corrupt
            or holds a different record count than the manifest promises.
        """
        manifest = self.catalog.get(dataset_id)
        if manifest is None:
            raise PersistError(
                f"dataset {dataset_id!r} is not in the snapshot catalog of {self.root}"
            )
        if manifest.results_file is None:
            return []
        data, num_records = self._read_raw(manifest.results_file,
                                           expected_block_size=manifest.block_size,
                                           record_size=RESULT_CODEC.record_size)
        if num_records != manifest.results_count:
            raise PersistError(
                f"results blob of {dataset_id!r} holds {num_records} records, "
                f"manifest promises {manifest.results_count}"
            )
        return RESULT_CODEC.decode_all(data)

    def load_dataset(self, dataset_id: str) -> LoadedSnapshot:
        """Read one dataset back, verifying checksum and fingerprint.

        Raises
        ------
        PersistError
            When the dataset is not in the catalog, was written with an
            incompatible codec or block size, or its points blob is corrupt.
            A corrupt *grid* blob does not raise: the points still verify, so
            the snapshot is returned with ``grid=None`` and the failure
            recorded in ``grid_error`` (callers rebuild the index).
        """
        manifest = self.catalog.get(dataset_id)
        if manifest is None:
            raise PersistError(
                f"dataset {dataset_id!r} is not in the snapshot catalog of {self.root}"
            )
        if manifest.codec != POINTS_CODEC_NAME:
            raise PersistError(
                f"snapshot of {dataset_id!r} uses codec {manifest.codec!r}; "
                f"this build reads {POINTS_CODEC_NAME!r}"
            )
        flat = self._read_columns(manifest.points_file,
                                  expected_block_size=manifest.block_size)
        if len(flat) != 3 * manifest.count:
            raise PersistError(
                f"snapshot of {dataset_id!r} holds {len(flat)} column values, "
                f"expected {3 * manifest.count}"
            )
        xs = flat[:manifest.count].copy()
        ys = flat[manifest.count:2 * manifest.count].copy()
        ws = flat[2 * manifest.count:].copy()
        fingerprint = fingerprint_columns(xs, ys, ws)
        if fingerprint != manifest.fingerprint:
            raise PersistError(
                f"snapshot of {dataset_id!r} decodes to fingerprint "
                f"{fingerprint[:12]}..., catalog says "
                f"{manifest.fingerprint[:12]}...; rejecting the corrupt snapshot"
            )

        grid: Union[GridSnapshot, ShardedGridSnapshot, None] = None
        grid_error: Optional[str] = None
        if manifest.grid is not None:
            try:
                grid = self._load_grid(dataset_id, manifest.grid)
            except PersistError as exc:
                grid_error = str(exc)
        return LoadedSnapshot(manifest=manifest, xs=xs, ys=ys, ws=ws,
                              grid=grid, grid_error=grid_error)

    # ------------------------------------------------------------------ #
    # Deletion
    # ------------------------------------------------------------------ #
    def delete_dataset(self, dataset_id: str) -> bool:
        """Drop a dataset from the catalog and remove unshared blob files.

        Returns whether the dataset was present.  Blob files are only
        unlinked when no other catalog entry references them (identical
        datasets registered under several ids share blobs).
        """
        manifest = self.catalog.datasets.pop(dataset_id, None)
        if manifest is None:
            return False
        save_catalog(self.root, self.catalog)
        self._remove_orphaned_blobs(manifest)
        return True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _write_records(self, file_name: str, codec: RecordCodec,
                       records) -> None:
        """Write records as one record file, mirror its blocks to a blob.

        The record file is written through the buffer pool (one charged block
        write per block, the EM cost of spilling the snapshot), its finished
        block images are copied into the host blob, and the simulated blocks
        are then released -- the blob is the durable copy.
        """
        with obs.span("persist.blob_io", file=file_name, mode="write") as span:
            before = self.context.stats.snapshot()
            file = self.context.create_file(codec, name=file_name)
            try:
                with file.writer() as writer:
                    writer.extend(records)
                payloads = [self.context.device.peek(block_id)
                            for block_id in file.block_ids]
                write_blob(self.root / file_name,
                           block_size=self.context.config.block_size,
                           payloads=payloads, num_records=file.num_records)
            finally:
                # Release the simulated blocks even when the host write fails
                # -- the store's EMContext is long-lived and must not leak
                # them.
                file.delete()
            delta = self.context.stats.since(before)
            span.set_attributes(block_reads=delta.block_reads,
                                block_writes=delta.block_writes)

    def _write_columns(self, file_name: str, columns: List[np.ndarray]) -> None:
        """Write float64 columns, one after another, as a columnar blob.

        The write path is vectorised to match the read path's ``frombuffer``:
        the concatenated column bytes are sliced into block payloads and
        pushed through the buffer pool block by block (one charged write
        each, exactly as a :class:`~repro.em.record_file.RecordWriter` would
        be charged), rather than packing 8-byte records one at a time.
        """
        with obs.span("persist.blob_io", file=file_name, mode="write") as span:
            before = self.context.stats.snapshot()
            stream = b"".join(np.ascontiguousarray(column, dtype="<f8").tobytes()
                              for column in columns)
            block_size = self.context.config.block_size
            records_per_block = block_size // COLUMN_CODEC.record_size
            payload_size = records_per_block * COLUMN_CODEC.record_size
            device = self.context.device
            pool = self.context.pool
            block_ids = []
            payloads = []
            try:
                for offset in range(0, len(stream), payload_size):
                    payload = stream[offset:offset + payload_size]
                    block_id = device.allocate()
                    pool.put(block_id, payload)
                    pool.flush_block(block_id)  # one charged block write
                    pool.invalidate(block_id)
                    block_ids.append(block_id)
                    payloads.append(payload)
                write_blob(self.root / file_name, block_size=block_size,
                           payloads=payloads,
                           num_records=len(stream) // COLUMN_CODEC.record_size)
            finally:
                for block_id in block_ids:
                    device.free(block_id)
            delta = self.context.stats.since(before)
            span.set_attributes(block_reads=delta.block_reads,
                                block_writes=delta.block_writes)

    def _read_raw(self, file_name: str, *, expected_block_size: int,
                  record_size: int):
        """Read a blob back through the substrate as one verified byte stream.

        Charges one block read per block: the blob's verified block images
        are installed on the simulated disk for free
        (:meth:`~repro.em.device.BlockDevice.restore_block`) and then fetched
        through the buffer pool.  Returns ``(data, num_records)`` with
        ``data`` trimmed to exactly the records' bytes.
        """
        with obs.span("persist.blob_io", file=file_name, mode="read") as span:
            before = self.context.stats.snapshot()
            block_size, num_records, blocks = read_blob(self.root / file_name)
            if block_size != expected_block_size:
                raise PersistError(
                    f"snapshot blob {file_name} carries block size "
                    f"{block_size}, its manifest says {expected_block_size}"
                )
            if block_size != self.context.config.block_size:
                raise PersistError(
                    f"snapshot blob {file_name} was written with "
                    f"{block_size} B blocks; this store is configured for "
                    f"{self.context.config.block_size} B blocks -- open it "
                    "with a matching EMConfig"
                )
            device = self.context.device
            pool = self.context.pool
            block_ids = [device.restore_block(block) for block in blocks]
            # Each block holds a whole number of records followed by padding;
            # trim per block before joining or the pad bytes of every full
            # block would shift into the record stream (records_per_block *
            # record_size < block_size whenever the record size does not
            # divide the block).
            usable = (block_size // record_size) * record_size
            parts = []
            for block_id in block_ids:
                parts.append(bytes(pool.get(block_id).data)[:usable])
            for block_id in block_ids:
                pool.invalidate(block_id)
                device.free(block_id)
            data = b"".join(parts)[:num_records * record_size]
            if len(data) != num_records * record_size:
                raise PersistError(
                    f"snapshot blob {file_name} holds fewer bytes than its "
                    f"{num_records} records require"
                )
            delta = self.context.stats.since(before)
            span.set_attributes(block_reads=delta.block_reads,
                                block_writes=delta.block_writes)
            return data, num_records

    def _read_columns(self, file_name: str, *,
                      expected_block_size: int) -> np.ndarray:
        """Read a columnar blob back as one float64 stream."""
        data, _ = self._read_raw(file_name,
                                 expected_block_size=expected_block_size,
                                 record_size=COLUMN_CODEC.record_size)
        return np.frombuffer(data, dtype="<f8")

    def _load_grid(self, dataset_id: str, manifest: GridManifest
                   ) -> Union[GridSnapshot, ShardedGridSnapshot]:
        if manifest.shards is not None:
            return self._load_sharded_grid(dataset_id, manifest)
        weights, counts = self._read_grid_blob(
            dataset_id, manifest.file, manifest.n_rows, manifest.n_cols)
        return GridSnapshot(
            n_rows=manifest.n_rows, n_cols=manifest.n_cols,
            x0=manifest.x0, y0=manifest.y0,
            cell_w=manifest.cell_w, cell_h=manifest.cell_h,
            cell_weights=weights, cell_counts=counts,
            levels=self._load_grid_levels(dataset_id, manifest),
        )

    def _load_grid_levels(self, dataset_id: str, manifest: GridManifest
                          ) -> tuple:
        """Read the pyramid level blobs back (empty for v1/v2 manifests).

        A missing or corrupt level blob raises
        :class:`~repro.errors.PersistError`, which the caller surfaces as
        ``grid_error`` -- the whole index is rebuilt rather than served with
        an unverifiable level.  Roll-up consistency against the base
        aggregates is re-checked at adoption time (``adopt_pyramid``).
        """
        if not manifest.levels:
            return ()
        levels = []
        for level in manifest.levels:
            if level.n_rows < 1 or level.n_cols < 1 or level.scale < 2:
                raise PersistError(
                    f"grid level of {dataset_id!r} has degenerate shape "
                    f"{level.n_rows} x {level.n_cols} at scale {level.scale}"
                )
            weights, counts = self._read_grid_blob(
                dataset_id, level.file, level.n_rows, level.n_cols)
            levels.append(GridLevelSnapshot(
                scale=level.scale, n_rows=level.n_rows, n_cols=level.n_cols,
                cell_weights=weights, cell_counts=counts))
        return tuple(levels)

    def _load_sharded_grid(self, dataset_id: str,
                           manifest: GridManifest) -> ShardedGridSnapshot:
        shards = []
        for shard in manifest.shards:
            rows = shard.row1 - shard.row0
            cols = shard.col1 - shard.col0
            if rows < 1 or cols < 1:
                raise PersistError(
                    f"grid shard of {dataset_id!r} spans an empty cell block "
                    f"[{shard.row0}, {shard.row1}) x [{shard.col0}, {shard.col1})"
                )
            weights, counts = self._read_grid_blob(
                dataset_id, shard.file, rows, cols)
            shards.append(GridShardSnapshot(
                row0=shard.row0, row1=shard.row1,
                col0=shard.col0, col1=shard.col1,
                cell_weights=weights, cell_counts=counts))
        snap = ShardedGridSnapshot(
            n_rows=manifest.n_rows, n_cols=manifest.n_cols,
            x0=manifest.x0, y0=manifest.y0,
            cell_w=manifest.cell_w, cell_h=manifest.cell_h,
            shards=tuple(shards),
            levels=self._load_grid_levels(dataset_id, manifest),
        )
        if not snap.tiles_exactly():
            raise PersistError(
                f"grid shards of {dataset_id!r} do not tile the "
                f"{manifest.n_rows} x {manifest.n_cols} grid exactly; "
                "rejecting the corrupt sharded grid snapshot"
            )
        return snap

    def _read_grid_blob(self, dataset_id: str, file_name: str,
                        n_rows: int, n_cols: int):
        """Read one grid aggregate blob (weights column, counts column)."""
        flat = self._read_columns(file_name,
                                  expected_block_size=self.catalog.datasets[
                                      dataset_id].block_size)
        num_cells = n_rows * n_cols
        if len(flat) != 2 * num_cells:
            raise PersistError(
                f"grid blob {file_name} of {dataset_id!r} holds {len(flat)} "
                f"values, expected {2 * num_cells}"
            )
        weights = flat[:num_cells].copy().reshape(n_rows, n_cols)
        counts_f = flat[num_cells:]
        counts = counts_f.astype(np.int64)
        if not np.array_equal(counts_f, counts.astype(np.float64)):
            raise PersistError(
                f"grid blob {file_name} of {dataset_id!r} holds non-integral "
                "cell counts; rejecting the corrupt grid snapshot"
            )
        return weights, counts.reshape(n_rows, n_cols)

    def _remove_orphaned_blobs(self, manifest: DatasetManifest) -> None:
        """Unlink the blob files of a dropped manifest if nothing shares them."""
        candidates = [manifest.points_file]
        if manifest.grid is not None:
            candidates.extend(manifest.grid.files())
        if manifest.results_file is not None:
            candidates.append(manifest.results_file)
        for file_name in candidates:
            if not self.catalog.references(file_name):
                try:
                    (self.root / file_name).unlink()
                except FileNotFoundError:
                    pass

"""Naive externalized plane sweep (the "Naive" baseline of Section 7).

The classical in-memory algorithm sweeps a horizontal line over the dual
rectangles, keeping the x-intervals of the currently intersected rectangles in
a binary tree.  The *naive* externalization studied by Du et al. -- and used
by the paper as the first comparison point -- simply keeps that interval set
as a flat file on disk:

* at a bottom edge, the whole interval file is read to determine how much
  weight already overlaps the new interval (updating the running maximum), and
  the file is rewritten with the new interval appended;
* at a top edge, the file is read and rewritten without the closed interval.

Each of the ``2N`` events therefore costs ``Θ(A/B)`` block transfers, where
``A`` is the current number of active intervals, for a total of ``O(N²/B)``
I/Os -- the quadratic curve that dominates Figures 12--16.

Two execution modes are provided (see DESIGN.md):

* **real mode** (default): the interval file genuinely lives on the simulated
  disk and every scan and rewrite moves blocks through the buffer pool;
* **simulation mode** (``simulate_io=True``): the same block transfers are
  charged against the same counters using the exact per-event formula above,
  while the sweep bookkeeping runs on an in-memory mirror.  The reported
  optimum is identical; only wall-clock time differs.  This is what makes the
  paper-scale parameter sweeps (hundreds of thousands of objects, for which
  the real mode would perform billions of block transfers) feasible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.baselines.common import BaselineResult
from repro.core.events import events_sort_key
from repro.core.transform import objects_file_to_event_file, write_objects_file
from repro.em.codecs import EVENT_BOTTOM, EVENT_CODEC
from repro.em.context import EMContext
from repro.em.external_sort import external_sort
from repro.em.record_file import RecordFile
from repro.em.serializer import StructRecordCodec
from repro.errors import ConfigurationError
from repro.geometry import WeightedPoint

__all__ = ["NaivePlaneSweep"]

#: Codec of one active interval ``(x1, x2, weight)``.
_INTERVAL_CODEC = StructRecordCodec("<ddd")

Interval3 = Tuple[float, float, float]


class NaivePlaneSweep:
    """Naive external plane sweep for MaxRS.

    Parameters
    ----------
    ctx:
        External-memory context to run in (and charge I/O against).
    width, height:
        The query rectangle size ``d1 x d2``.
    simulate_io:
        Use the I/O-faithful simulation mode instead of physically scanning
        and rewriting the interval file (see module docstring).
    """

    def __init__(self, ctx: EMContext, width: float, height: float, *,
                 simulate_io: bool = False) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"query rectangle must have positive extent, got {width} x {height}"
            )
        self.ctx = ctx
        self.width = width
        self.height = height
        self.simulate_io = simulate_io

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def solve(self, objects) -> BaselineResult:
        """Solve MaxRS for an in-memory list of objects."""
        objects_file = write_objects_file(self.ctx, objects, name="naive-objects")
        try:
            return self.solve_objects_file(objects_file)
        finally:
            objects_file.delete()

    def solve_objects_file(self, objects_file: RecordFile) -> BaselineResult:
        """Solve MaxRS for a dataset stored as an object record file."""
        start = self.ctx.stats.snapshot()
        event_file = objects_file_to_event_file(
            self.ctx, objects_file, self.width, self.height, name="naive-events")
        sorted_events = external_sort(
            self.ctx, event_file, EVENT_CODEC, key=events_sort_key, delete_input=True)
        if self.simulate_io:
            result = self._sweep_simulated(sorted_events)
        else:
            result = self._sweep_real(sorted_events)
        sorted_events.delete()
        io = self.ctx.io_since(start)
        return BaselineResult(
            total_weight=result[0],
            io=io,
            best_x1=result[1],
            best_x2=result[2],
            best_y=result[3],
            events_processed=result[4],
            simulated=self.simulate_io,
        )

    # ------------------------------------------------------------------ #
    # Real mode: the interval file lives on the simulated disk
    # ------------------------------------------------------------------ #
    def _sweep_real(self, event_file: RecordFile):
        active_file = self.ctx.create_file(_INTERVAL_CODEC, name="naive-active")
        best_weight = 0.0
        best = (-math.inf, math.inf, -math.inf)
        events = 0
        for record in event_file.reader():
            y, kind, x1, x2, weight = record
            events += 1
            active: List[Interval3] = [tuple(r) for r in active_file.reader()]
            if kind == EVENT_BOTTOM:
                overlap = _max_overlap_within(active, x1, x2) + weight
                if overlap > best_weight:
                    best_weight = overlap
                    best = (x1, x2, y)
                active.append((x1, x2, weight))
            else:
                _remove_one(active, (x1, x2, weight))
            rewritten = self.ctx.create_file(_INTERVAL_CODEC, name="naive-active")
            rewritten.write_all(active)
            active_file.delete()
            active_file = rewritten
        active_file.delete()
        return best_weight, best[0], best[1], best[2], events

    # ------------------------------------------------------------------ #
    # Simulation mode: identical I/O charges, in-memory bookkeeping
    # ------------------------------------------------------------------ #
    def _sweep_simulated(self, event_file: RecordFile):
        from repro.core.plane_sweep import sweep_events

        records_per_block = self.ctx.records_per_block(_INTERVAL_CODEC.record_size)
        stats = self.ctx.stats
        active_count = 0
        events = 0
        all_records = []
        for record in event_file.reader():
            kind = record[1]
            events += 1
            # The real implementation reads the whole interval file and
            # rewrites it with the interval added or removed; charge exactly
            # those block transfers.
            stats.record_read(_blocks(active_count, records_per_block))
            if kind == EVENT_BOTTOM:
                active_count += 1
            else:
                active_count -= 1
            stats.record_write(_blocks(active_count, records_per_block))
            all_records.append(record)
        # The reported optimum is independent of the execution mode; compute
        # it once with the in-memory sweep (free of simulated I/O, as the
        # charges above already account for the naive algorithm's work).
        _, best = sweep_events(all_records)
        return best.weight, best.x1, best.x2, best.y1, events


# ---------------------------------------------------------------------- #
# Sweep-step helpers (shared by both modes)
# ---------------------------------------------------------------------- #
def _blocks(records: int, per_block: int) -> int:
    """Blocks needed to hold ``records`` records."""
    if records <= 0:
        return 0
    return (records + per_block - 1) // per_block


def _max_overlap_within(active: List[Interval3], x1: float, x2: float) -> float:
    """Maximum total weight of active intervals overlapping a point of ``(x1, x2)``.

    The maximum over the open interval is computed with a one-dimensional
    endpoint sweep clipped to ``(x1, x2)``.  The new interval's own weight is
    *not* included (the caller adds it), matching the insertion step of the
    classical algorithm: the best placement containing the new rectangle is
    evaluated the moment the rectangle is inserted.
    """
    if not active:
        return 0.0
    boundaries: List[Tuple[float, float]] = []
    for a1, a2, w in active:
        lo = max(a1, x1)
        hi = min(a2, x2)
        if lo < hi:
            boundaries.append((lo, w))
            boundaries.append((hi, -w))
    if not boundaries:
        return 0.0
    boundaries.sort()
    best = 0.0
    running = 0.0
    index = 0
    count = len(boundaries)
    while index < count:
        x = boundaries[index][0]
        while index < count and boundaries[index][0] == x:
            running += boundaries[index][1]
            index += 1
        if running > best:
            best = running
    return best


def _remove_one(active: List[Interval3], interval: Interval3) -> None:
    """Remove one occurrence of ``interval`` from the active list."""
    for position in range(len(active) - 1, -1, -1):
        if active[position] == interval:
            del active[position]
            return


def solve_naive(objects: List[WeightedPoint], width: float, height: float,
                ctx: Optional[EMContext] = None, *,
                simulate_io: bool = False) -> BaselineResult:
    """Convenience wrapper running :class:`NaivePlaneSweep` on a fresh context."""
    context = ctx if ctx is not None else EMContext()
    return NaivePlaneSweep(context, width, height,
                           simulate_io=simulate_io).solve(objects)

"""The aSB-tree baseline (external aggregate sweep structure).

Du et al. externalized the plane sweep behind optimal-location queries with an
*aggregate SB-tree*: the sweep's interval structure becomes a disk-resident,
block-aligned aggregate tree over the x-axis, so every rectangle edge costs a
logarithmic number of node accesses instead of a full rescan of the interval
file.  The paper uses exactly this structure as its second baseline ("aSB-
Tree" in Figures 12--16): asymptotically ``O(N log_B N)`` I/Os -- far better
than the naive sweep, still a factor ``B log_{M/B}`` away from ExactMaxRS.

This module reconstructs the structure as :class:`ASBTree`:

* the tree is built over the distinct x-coordinates of the dual rectangles'
  vertical edges (obtained with one linear pass and one external sort);
* each node occupies exactly one disk block and stores, for each of its up to
  ``F = B_block/24`` children, the child's lower x-boundary, a pending
  (lazy) weight addition, and the maximum location-weight inside the child's
  subtree;
* a rectangle edge updates the tree with a standard lazy range addition along
  at most two root-to-leaf paths, returning the new global maximum, which the
  sweep folds into its running answer.

Like the naive baseline, the tree runs either against the real simulated disk
(every node access goes through the buffer pool) or in an I/O-faithful
simulation mode whose node accesses are charged through an LRU residency model
of the same capacity (``simulate_io=True``), which is what makes paper-scale
sweeps affordable in wall-clock time.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.common import BaselineResult, SimulatedLRUCache
from repro.core.events import events_sort_key
from repro.core.transform import objects_file_to_event_file, write_objects_file
from repro.em.codecs import EVENT_BOTTOM, EVENT_CODEC
from repro.em.context import EMContext
from repro.em.external_sort import external_sort
from repro.em.record_file import RecordFile
from repro.em.serializer import StructRecordCodec
from repro.errors import AlgorithmError, ConfigurationError
from repro.geometry import WeightedPoint

__all__ = ["ASBTree", "ASBTreeSweep"]

#: Codec for the temporary file of vertical-edge x-coordinates.
_EDGE_CODEC = StructRecordCodec("<d")

#: Bytes per child slot: (lower x-boundary, pending add, subtree max).
_SLOT_BYTES = 24


@dataclass(slots=True)
class _NodeMeta:
    """In-memory catalogue entry for one tree node (its data lives on disk)."""

    block_id: int
    first_x: float
    num_slots: int


class ASBTree:
    """Disk-resident aggregate tree over the x-axis with lazy range additions.

    Parameters
    ----------
    ctx:
        External-memory context providing the disk and buffer pool.
    boundaries:
        Sorted, distinct x-coordinates delimiting the elementary cells
        (usually the vertical-edge x-coordinates of the dual rectangles).
    simulate_io:
        When ``True`` node payloads are kept in process memory and their
        block transfers are charged through an LRU residency model of the
        buffer pool's capacity instead of moving real blocks.

    Notes
    -----
    The node *catalogue* (block ids and child counts) is kept in memory, as a
    real system would cache an index's skeleton; all aggregate payloads --
    the per-child pending additions and subtree maxima -- live in disk blocks
    and every access to them is charged as I/O.
    """

    def __init__(self, ctx: EMContext, boundaries: List[float], *,
                 simulate_io: bool = False) -> None:
        if len(boundaries) < 2:
            raise AlgorithmError(
                "an aSB-tree needs at least two distinct x-coordinates"
            )
        self.ctx = ctx
        self.simulate_io = simulate_io
        self.fanout = max(2, ctx.config.block_size // _SLOT_BYTES)
        self._codec = StructRecordCodec("<" + "ddd" * self.fanout)
        self._levels: List[List[_NodeMeta]] = []
        self._memory_nodes: List[List[List[float]]] = []
        self._cache = SimulatedLRUCache(ctx.pool.capacity_blocks, ctx.stats) \
            if simulate_io else None
        self._build(boundaries)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self, boundaries: List[float]) -> None:
        # Level 0: one slot per elementary cell [boundaries[i], boundaries[i+1]).
        level_entries: List[Tuple[float, float, float]] = [
            (x, 0.0, 0.0) for x in boundaries[:-1]
        ]
        self._upper = boundaries[-1]
        while True:
            level_meta, next_entries = self._build_level(level_entries)
            self._levels.append(level_meta)
            if len(level_meta) == 1:
                break
            level_entries = next_entries

    def _build_level(self, entries: List[Tuple[float, float, float]]):
        """Pack ``entries`` (child summaries) into nodes of one tree level."""
        metas: List[_NodeMeta] = []
        parent_entries: List[Tuple[float, float, float]] = []
        memory_level: List[List[float]] = []
        for start in range(0, len(entries), self.fanout):
            chunk = entries[start:start + self.fanout]
            slots: List[float] = []
            for x_lo, add, sub_max in chunk:
                slots.extend((x_lo, add, sub_max))
            # Pad unused slots so every node occupies exactly one block.
            slots.extend([math.inf, 0.0, -math.inf] * (self.fanout - len(chunk)))
            block_id = self._store_new_node(slots, len(metas), len(self._levels),
                                            memory_level)
            metas.append(_NodeMeta(block_id=block_id, first_x=chunk[0][0],
                                   num_slots=len(chunk)))
            parent_entries.append((chunk[0][0], 0.0, 0.0))
        if self.simulate_io:
            self._memory_nodes.append(memory_level)
        return metas, parent_entries

    def _store_new_node(self, slots: List[float], node_index: int, level: int,
                        memory_level: List[List[float]]) -> int:
        if self.simulate_io:
            memory_level.append(list(slots))
            # Writing the freshly built node to disk costs one block write.
            self.ctx.stats.record_write()
            return node_index
        block_id = self.ctx.device.allocate()
        self.ctx.pool.put(block_id, self._codec.encode_one(tuple(slots)))
        return block_id

    # ------------------------------------------------------------------ #
    # Node access
    # ------------------------------------------------------------------ #
    def _load_slots(self, level: int, index: int) -> List[float]:
        if self.simulate_io:
            self._cache.access((level, index), dirty=False)
            return self._memory_nodes[level][index]
        meta = self._levels[level][index]
        frame = self.ctx.pool.get(meta.block_id)
        return list(self._codec.decode_all(bytes(frame.data))[0])

    def _store_slots(self, level: int, index: int, slots: List[float]) -> None:
        if self.simulate_io:
            self._cache.access((level, index), dirty=True)
            self._memory_nodes[level][index] = slots
            return
        meta = self._levels[level][index]
        self.ctx.pool.put(meta.block_id, self._codec.encode_one(tuple(slots)))

    # ------------------------------------------------------------------ #
    # Updates and queries
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Number of levels of the tree (1 for a single-node tree)."""
        return len(self._levels)

    def range_add(self, x1: float, x2: float, delta: float) -> float:
        """Add ``delta`` to the location-weight over ``[x1, x2)``.

        Returns the new global maximum location-weight.  ``x1`` and ``x2`` are
        expected to be cell boundaries (they are vertical-edge coordinates of
        the input rectangles, which is how the tree was built).
        """
        if x2 <= x1 or delta == 0.0:
            return self.global_max()
        root_level = len(self._levels) - 1
        return self._update(root_level, 0, self._upper, x1, x2, delta)

    def global_max(self) -> float:
        """Return the current maximum location-weight over the whole axis."""
        root_level = len(self._levels) - 1
        slots = self._load_slots(root_level, 0)
        count = self._levels[root_level][0].num_slots
        return max(slots[3 * j + 1] + slots[3 * j + 2] for j in range(count))

    def _update(self, level: int, index: int, upper: float, x1: float,
                x2: float, delta: float) -> float:
        meta = self._levels[level][index]
        slots = self._load_slots(level, index)
        count = meta.num_slots
        child_lo = [slots[3 * j] for j in range(count)]
        # Children whose range [child_lo[j], child_hi[j]) intersects [x1, x2).
        first = max(0, bisect_right(child_lo, x1) - 1)
        last = min(count - 1, bisect_left(child_lo, x2) - 1)
        modified = False
        for j in range(first, last + 1):
            lo = child_lo[j]
            hi = child_lo[j + 1] if j + 1 < count else upper
            if hi <= x1 or lo >= x2:
                continue
            if x1 <= lo and hi <= x2:
                slots[3 * j + 1] += delta
                modified = True
            elif level > 0:
                child_max = self._update(level - 1, index * self.fanout + j, hi,
                                         x1, x2, delta)
                slots[3 * j + 2] = child_max
                modified = True
            else:
                # A cell is never partially covered because x1/x2 are cell
                # boundaries; treat defensively as covered.
                slots[3 * j + 1] += delta
                modified = True
        if modified:
            self._store_slots(level, index, slots)
        return max(slots[3 * j + 1] + slots[3 * j + 2] for j in range(count))

    def finish(self) -> None:
        """Charge any deferred write-backs held by the simulation cache."""
        if self._cache is not None:
            self._cache.flush()

    def delete(self) -> None:
        """Release every node block (real mode only; the simulation mode keeps
        its nodes in process memory).

        Call this *after* the I/O of the run has been measured: flushing the
        buffer pool first ensures deferred node write-backs are still counted.
        """
        if self.simulate_io:
            self._memory_nodes = []
            return
        for level in self._levels:
            for meta in level:
                self.ctx.pool.invalidate(meta.block_id)
                self.ctx.device.free(meta.block_id)
        self._levels = []


class ASBTreeSweep:
    """MaxRS via a plane sweep over an :class:`ASBTree` (the paper's baseline).

    Parameters
    ----------
    ctx:
        External-memory context.
    width, height:
        The query rectangle size ``d1 x d2``.
    simulate_io:
        Forwarded to :class:`ASBTree` (see module docstring).
    """

    def __init__(self, ctx: EMContext, width: float, height: float, *,
                 simulate_io: bool = False) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"query rectangle must have positive extent, got {width} x {height}"
            )
        self.ctx = ctx
        self.width = width
        self.height = height
        self.simulate_io = simulate_io

    def solve(self, objects) -> BaselineResult:
        """Solve MaxRS for an in-memory list of objects."""
        objects_file = write_objects_file(self.ctx, objects, name="asb-objects")
        try:
            return self.solve_objects_file(objects_file)
        finally:
            objects_file.delete()

    def solve_objects_file(self, objects_file: RecordFile) -> BaselineResult:
        """Solve MaxRS for a dataset stored as an object record file."""
        start = self.ctx.stats.snapshot()

        boundaries = self._edge_boundaries(objects_file)
        if len(boundaries) < 2:
            # Empty (or fully degenerate) dataset: nothing can be covered.
            return BaselineResult(total_weight=0.0,
                                  io=self.ctx.io_since(start),
                                  simulated=self.simulate_io)
        event_file = objects_file_to_event_file(
            self.ctx, objects_file, self.width, self.height, name="asb-events")
        sorted_events = external_sort(
            self.ctx, event_file, EVENT_CODEC, key=events_sort_key, delete_input=True)

        tree = ASBTree(self.ctx, boundaries, simulate_io=self.simulate_io)
        best_weight = 0.0
        best_y = -math.inf
        events = 0
        for record in sorted_events.reader():
            y, kind, x1, x2, weight = record
            events += 1
            delta = weight if kind == EVENT_BOTTOM else -weight
            current_max = tree.range_add(x1, x2, delta)
            if kind == EVENT_BOTTOM and current_max > best_weight:
                best_weight = current_max
                best_y = y
        tree.finish()
        sorted_events.delete()
        io = self.ctx.io_since(start)
        tree.delete()
        return BaselineResult(
            total_weight=best_weight,
            io=io,
            best_y=best_y,
            events_processed=events,
            simulated=self.simulate_io,
        )

    # ------------------------------------------------------------------ #
    # Build helpers
    # ------------------------------------------------------------------ #
    def _edge_boundaries(self, objects_file: RecordFile) -> List[float]:
        """Collect the sorted distinct vertical-edge x-coordinates.

        One linear pass writes the ``2N`` edge coordinates to a temporary
        file, an external sort orders them, and one more pass de-duplicates
        them while building the boundary list -- the same I/O profile a real
        bulk-load of the structure would have.
        """
        half_w = self.width / 2.0
        edges = self.ctx.create_file(_EDGE_CODEC, name="asb-edges")
        with edges.writer() as writer:
            for x, _, _ in objects_file.reader():
                writer.append((x - half_w,))
                writer.append((x + half_w,))
        sorted_edges = external_sort(self.ctx, edges, _EDGE_CODEC,
                                     delete_input=True)
        boundaries: List[float] = []
        for (x,) in sorted_edges.reader():
            if not boundaries or x > boundaries[-1]:
                boundaries.append(x)
        sorted_edges.delete()
        return boundaries


def solve_asb_tree(objects: List[WeightedPoint], width: float, height: float,
                   ctx: Optional[EMContext] = None, *,
                   simulate_io: bool = False) -> BaselineResult:
    """Convenience wrapper running :class:`ASBTreeSweep` on a fresh context."""
    context = ctx if ctx is not None else EMContext()
    return ASBTreeSweep(context, width, height,
                        simulate_io=simulate_io).solve(objects)

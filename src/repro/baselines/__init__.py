"""Baseline algorithms the paper compares ExactMaxRS against.

* :class:`~repro.baselines.naive_sweep.NaivePlaneSweep` -- the naive
  externalized plane sweep (interval structure kept as a flat, rescanned disk
  file): ``O(N^2/B)`` I/Os.
* :class:`~repro.baselines.asb_tree.ASBTreeSweep` -- the aSB-tree of Du et
  al.: the interval structure becomes a disk-resident aggregate tree with
  lazy range additions, ``O(N log_B N)`` I/Os.
* :mod:`repro.baselines.oracle` -- brute-force reference solvers used by the
  tests to validate every algorithm on small instances.

Both baselines compute exactly the same optimum as ExactMaxRS; the empirical
study (Figures 12--16) compares only their I/O cost.
"""

from repro.baselines.asb_tree import ASBTree, ASBTreeSweep, solve_asb_tree
from repro.baselines.common import BaselineResult, SimulatedLRUCache
from repro.baselines.naive_sweep import NaivePlaneSweep, solve_naive
from repro.baselines.oracle import brute_force_maxcrs, brute_force_maxrs

__all__ = [
    "ASBTree",
    "ASBTreeSweep",
    "BaselineResult",
    "NaivePlaneSweep",
    "SimulatedLRUCache",
    "brute_force_maxcrs",
    "brute_force_maxrs",
    "solve_asb_tree",
    "solve_naive",
]

"""Brute-force oracles used to validate every solver on small instances.

These are deliberately simple, obviously-correct (and slow) reference
implementations.  They rely on the standard candidate argument: an optimal
axis-aligned rectangle can always be translated until its right edge passes
just right of some object's x-coordinate and its top edge just above some
object's y-coordinate, so it suffices to test ``O(N^2)`` candidate centres;
likewise an optimal circle can be centred at an object or arbitrarily close to
an intersection point of two object-centred circles.

The oracles evaluate the objective by scanning all objects per candidate, so
they are ``O(N^3)``; tests only use them with a few dozen objects.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry import (
    Circle,
    Point,
    Rect,
    WeightedPoint,
    weight_in_circle,
    weight_in_rect,
)

__all__ = ["brute_force_maxrs", "brute_force_maxcrs"]

#: Relative nudge used to place candidate centres strictly past boundaries.
_EPS = 1e-9


def brute_force_maxrs(objects: Sequence[WeightedPoint], width: float,
                      height: float) -> Tuple[Point, float]:
    """Return an optimal centre and the optimal weight for a MaxRS instance.

    Complexity ``O(N^3)``; intended for test instances only.
    """
    if not objects:
        return Point(0.0, 0.0), 0.0
    scale_x = max(1.0, max(abs(o.x) for o in objects))
    scale_y = max(1.0, max(abs(o.y) for o in objects))
    xs = sorted({o.x + width / 2.0 - _EPS * scale_x for o in objects})
    ys = sorted({o.y + height / 2.0 - _EPS * scale_y for o in objects})
    best_point = Point(xs[0], ys[0])
    best_weight = -1.0
    for cx in xs:
        for cy in ys:
            candidate = Point(cx, cy)
            rect = Rect.centered_at(candidate, width, height)
            weight = weight_in_rect(objects, rect)
            if weight > best_weight:
                best_weight = weight
                best_point = candidate
    return best_point, best_weight


def brute_force_maxcrs(objects: Sequence[WeightedPoint],
                       diameter: float) -> Tuple[Point, float]:
    """Return an optimal centre and the optimal weight for a MaxCRS instance.

    Candidates are the object locations themselves plus points just inside the
    pairwise intersections of the object-centred circles (both intersection
    points of every pair, each nudged towards both generating centres).
    Complexity ``O(N^3)``; intended for test instances only.
    """
    if not objects:
        return Point(0.0, 0.0), 0.0
    radius = diameter / 2.0
    candidates: List[Point] = [o.point for o in objects]
    count = len(objects)
    for i in range(count):
        for j in range(i + 1, count):
            candidates.extend(
                _circle_intersections(objects[i].point, objects[j].point, radius))
    best_point = candidates[0]
    best_weight = -1.0
    for candidate in candidates:
        weight = weight_in_circle(objects, Circle(candidate, diameter))
        if weight > best_weight:
            best_weight = weight
            best_point = candidate
    return best_point, best_weight


def _circle_intersections(a: Point, b: Point, radius: float) -> List[Point]:
    """Intersection points of two radius-``radius`` circles, nudged inward.

    The nudge moves each intersection point slightly towards the midpoint of
    the two centres, so boundary-exclusion (open disks) does not discard the
    candidate.
    """
    dist = a.distance_to(b)
    if dist == 0.0 or dist > 2.0 * radius:
        return []
    mid = a.midpoint(b)
    half = dist / 2.0
    offset = math.sqrt(max(0.0, radius * radius - half * half))
    # Unit vector perpendicular to a->b.
    ux = -(b.y - a.y) / dist
    uy = (b.x - a.x) / dist
    points = [
        Point(mid.x + ux * offset, mid.y + uy * offset),
        Point(mid.x - ux * offset, mid.y - uy * offset),
    ]
    nudged = []
    for p in points:
        nudged.append(Point(p.x + (mid.x - p.x) * 1e-9, p.y + (mid.y - p.y) * 1e-9))
    return nudged

"""Shared pieces of the baseline algorithms.

The two baselines of the paper's empirical study (Section 7.1) are
externalizations of the classical in-memory plane sweep, originally proposed
by Du et al. for optimal-location queries and applied to MaxRS here:

* the **naive plane sweep**, which keeps the sweep's interval structure as a
  flat disk file rescanned and rewritten at every event, and
* the **aSB-tree**, which keeps it as a disk-resident aggregate tree with
  logarithmic updates.

Both report the same optimum as ExactMaxRS; only their I/O cost differs,
which is precisely what Figures 12--16 compare.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.em.counters import IOSnapshot

__all__ = ["BaselineResult", "SimulatedLRUCache"]


@dataclass(frozen=True, slots=True)
class BaselineResult:
    """Outcome of a baseline MaxRS run.

    Attributes
    ----------
    total_weight:
        The maximum covered weight found (identical to ExactMaxRS's answer).
    io:
        Block transfers charged to the run.
    best_x1, best_x2, best_y:
        Where the maximum was first attained during the sweep: an x-interval
        and the y-coordinate of the event that produced it (diagnostic only;
        the baselines' purpose in the study is their I/O cost).
    events_processed:
        Number of sweep events consumed.
    simulated:
        ``True`` when the run used the I/O-faithful simulation mode (see
        DESIGN.md): the block transfers are charged exactly as the real
        implementation would incur them, while the CPU-side bookkeeping uses
        an in-memory mirror so that paper-scale parameter sweeps finish in
        reasonable wall-clock time.
    """

    total_weight: float
    io: Optional[IOSnapshot]
    best_x1: float = -math.inf
    best_x2: float = math.inf
    best_y: float = -math.inf
    events_processed: int = 0
    simulated: bool = False


class SimulatedLRUCache:
    """A counting model of the buffer pool used by the simulation modes.

    The simulation modes of the baselines do not move real blocks through the
    :class:`~repro.em.buffer_pool.BufferPool`; instead they charge reads and
    writes against the same :class:`~repro.em.counters.IOStats` while modelling
    residency with this LRU set, so the effect of the buffer size (Figures 13
    and 15) is preserved.

    Parameters
    ----------
    capacity:
        Number of blocks that fit in the modelled buffer.
    stats:
        The I/O counters to charge.
    """

    def __init__(self, capacity: int, stats) -> None:
        from collections import OrderedDict

        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.stats = stats
        self._resident: "OrderedDict[object, bool]" = OrderedDict()

    def access(self, key: object, *, dirty: bool) -> None:
        """Model one logical block access.

        A miss charges a read (plus a write-back when the evicted block was
        dirty); a hit only refreshes recency.  ``dirty`` marks the block as
        modified so its eventual eviction costs a write.
        """
        if key in self._resident:
            was_dirty = self._resident.pop(key)
            self._resident[key] = was_dirty or dirty
            self.stats.record_cache_hit()
            return
        if len(self._resident) >= self.capacity:
            _, victim_dirty = self._resident.popitem(last=False)
            if victim_dirty:
                self.stats.record_write()
        self.stats.record_read()
        self._resident[key] = dirty

    def flush(self) -> None:
        """Charge the write-back of every dirty resident block."""
        for dirty in self._resident.values():
            if dirty:
                self.stats.record_write()
        self._resident.clear()

"""Pluggable trace recorders: where finished traces go.

Three implementations cover the deployment spectrum:

* :class:`NullRecorder` — the production default.  Besides discarding
  traces it *signals* "tracing off" to the :class:`~repro.obs.span.Tracer`,
  which then never materialises spans at all (the overhead guard in
  ``benchmarks/test_obs_overhead.py`` pins this path at <= 3% on the 50k
  refined query).
* :class:`RingRecorder` — a bounded in-memory ring buffer.  Powers tests,
  ``stats()["traces"]``, and the TCP ``trace`` op that lets a remote client
  fetch the server-side half of its own trace.
* :class:`JsonLinesRecorder` — appends one JSON document per trace to a
  file, matching the JSON-lines framing of the wire protocol so the same
  tooling can chew on both.

All recorders are thread-safe: the engine finishes traces from asyncio
tasks, pool threads, and shard workers alike.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, TextIO, Union

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.obs.span
    from repro.obs.span import Trace

__all__ = ["JsonLinesRecorder", "NullRecorder", "RingRecorder",
           "TraceRecorder", "resolve_recorder"]


class TraceRecorder:
    """Recorder interface: one :meth:`record` call per finished trace."""

    def record(self, trace: "Trace") -> None:
        raise NotImplementedError


class NullRecorder(TraceRecorder):
    """Discard everything; its presence disables trace creation."""

    def record(self, trace: "Trace") -> None:
        return None


class RingRecorder(TraceRecorder):
    """Keep the most recent ``capacity`` traces in memory."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: Deque["Trace"] = deque(maxlen=capacity)

    def record(self, trace: "Trace") -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> List["Trace"]:
        """A snapshot of retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> List["Trace"]:
        """Every retained trace with ``trace_id`` (a request that fanned out
        produces one per server-side root), oldest first."""
        with self._lock:
            return [trace for trace in self._traces
                    if trace.trace_id == trace_id]

    def last(self) -> Optional["Trace"]:
        """The most recently recorded trace (``None`` when empty)."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonLinesRecorder(TraceRecorder):
    """Append one compact JSON document per trace to a file or stream.

    Accepts a path (opened lazily, append mode) or any writable text
    stream.  Each line is the trace's :meth:`~repro.obs.span.Span.to_dict`
    tree, so ``json.loads`` on one line rebuilds one trace via
    ``Trace.from_dict``.
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._stream: Optional[TextIO] = None
        else:
            self._path = None
            self._stream = target

    def record(self, trace: "Trace") -> None:
        line = json.dumps(trace.to_dict(), separators=(",", ":"))
        with self._lock:
            if self._stream is None:
                parent = os.path.dirname(self._path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._stream = open(self._path, "a", encoding="utf-8")
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._path is not None and self._stream is not None:
                self._stream.close()
                self._stream = None


def resolve_recorder(spec: Union[None, str, TraceRecorder]) -> TraceRecorder:
    """Resolve an engine-constructor recorder spec.

    ``None`` or ``"null"`` -> :class:`NullRecorder`; ``"ring"`` -> a
    :class:`RingRecorder` with the default capacity; any
    :class:`TraceRecorder` instance passes through.
    """
    if spec is None:
        return NullRecorder()
    if isinstance(spec, TraceRecorder):
        return spec
    if isinstance(spec, str):
        if spec == "null":
            return NullRecorder()
        if spec == "ring":
            return RingRecorder()
        raise ValueError(
            f"unknown recorder spec {spec!r}; expected 'null' or 'ring'")
    raise TypeError(
        f"recorder spec must be None, a name, or a TraceRecorder, got "
        f"{type(spec).__name__}")

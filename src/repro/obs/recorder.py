"""Pluggable trace recorders: where finished traces go.

Four implementations cover the deployment spectrum:

* :class:`NullRecorder` — the production default.  Besides discarding
  traces it *signals* "tracing off" to the :class:`~repro.obs.span.Tracer`,
  which then never materialises spans at all (the overhead guard in
  ``benchmarks/test_obs_overhead.py`` pins this path at <= 3% on the 50k
  refined query).
* :class:`RingRecorder` — a bounded in-memory ring buffer.  Powers tests,
  ``stats()["traces"]``, and the TCP ``trace`` op that lets a remote client
  fetch the server-side half of its own trace.
* :class:`TailSamplingRecorder` — tail-based sampling for production
  introspection: sees every finished trace but retains only the
  *interesting* ones (errors, degraded serves, slow queries, the top
  duration fraction of recent traffic) in a bounded buffer, so the memory
  cost stays fixed while the traces you actually want to look at survive.
* :class:`JsonLinesRecorder` — appends one JSON document per trace to a
  file, matching the JSON-lines framing of the wire protocol so the same
  tooling can chew on both.

All recorders are thread-safe: the engine finishes traces from asyncio
tasks, pool threads, and shard workers alike.
"""

from __future__ import annotations

import json
import math
import os
import threading
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, TextIO, Union

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.obs.span
    from repro.obs.span import Trace

__all__ = ["JsonLinesRecorder", "NullRecorder", "RingRecorder",
           "TailSamplingRecorder", "TraceRecorder", "resolve_recorder"]


class TraceRecorder:
    """Recorder interface: one :meth:`record` call per finished trace."""

    def record(self, trace: "Trace") -> None:
        raise NotImplementedError


class NullRecorder(TraceRecorder):
    """Discard everything; its presence disables trace creation."""

    def record(self, trace: "Trace") -> None:
        return None


class RingRecorder(TraceRecorder):
    """Keep the most recent ``capacity`` traces in memory."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: Deque["Trace"] = deque(maxlen=capacity)

    def record(self, trace: "Trace") -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> List["Trace"]:
        """A snapshot of retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> List["Trace"]:
        """Every retained trace with ``trace_id`` (a request that fanned out
        produces one per server-side root), oldest first."""
        with self._lock:
            return [trace for trace in self._traces
                    if trace.trace_id == trace_id]

    def last(self) -> Optional["Trace"]:
        """The most recently recorded trace (``None`` when empty)."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class TailSamplingRecorder(TraceRecorder):
    """Buffer completed traces, keep only the tail worth looking at.

    Head-based sampling (keep 1-in-N) throws away exactly the traces an
    operator needs: the slow ones and the failures.  This recorder decides
    *after* a trace completes — the tail-based strategy — keeping a trace
    when it is any of:

    * an **error**: any span in the tree finished with a non-``ok`` status;
    * **degraded**: the tree contains a span named ``degraded_span``
      (default ``"aio.degraded"``, the async engine's stale-serve marker);
    * **slow**: root duration >= ``slow_threshold_s`` (when configured);
    * **tail**: root duration in the top ``top_fraction`` of the last
      ``window`` trace durations.  The quantile is estimated from a sliding
      window, so it adapts to the workload; it is coarse until the window
      warms up (the first trace after a :meth:`clear` always qualifies).

    Everything else is dropped on arrival.  Kept traces live in a bounded
    deque of ``capacity`` entries — the memory cap: steady-state cost is
    ``capacity`` trace trees plus ``window`` floats, independent of traffic.
    :meth:`stats` reports seen/kept totals and per-reason counts, and the
    read API (:meth:`traces` / :meth:`find` / :meth:`last`) matches
    :class:`RingRecorder` so ``stats()["traces"]``, the TCP ``trace`` op and
    :mod:`repro.obs.analyze` work unchanged.
    """

    def __init__(self, capacity: int = 256, *,
                 slow_threshold_s: Optional[float] = None,
                 top_fraction: float = 0.05, window: int = 512,
                 degraded_span: str = "aio.degraded") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be >= 0, got {slow_threshold_s}")
        if not 0.0 <= top_fraction <= 1.0:
            raise ValueError(
                f"top_fraction must be in [0, 1], got {top_fraction}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self.top_fraction = top_fraction
        self.window = window
        self.degraded_span = degraded_span
        self._lock = threading.Lock()
        self._traces: Deque["Trace"] = deque(maxlen=capacity)
        self._durations: Deque[float] = deque(maxlen=window)
        self.seen = 0
        self.kept = 0
        self._reasons: Dict[str, int] = {"error": 0, "degraded": 0,
                                         "slow": 0, "tail": 0}

    def _keep_reason(self, trace: "Trace") -> Optional[str]:
        """Why ``trace`` should be retained, or ``None`` (lock held)."""
        degraded = False
        for span_ in trace.root.iter_spans():
            if span_.status != "ok":
                return "error"
            if span_.name == self.degraded_span:
                degraded = True
        if degraded:
            return "degraded"
        duration = trace.duration_s
        if (self.slow_threshold_s is not None
                and duration >= self.slow_threshold_s):
            return "slow"
        if self.top_fraction > 0.0:
            if not self._durations:
                return "tail"  # cold window: nothing to compare against yet
            ordered = sorted(self._durations)
            index = max(0, math.ceil(len(ordered)
                                     * (1.0 - self.top_fraction)) - 1)
            if duration >= ordered[index]:
                return "tail"
        return None

    def record(self, trace: "Trace") -> None:
        with self._lock:
            self.seen += 1
            reason = self._keep_reason(trace)
            self._durations.append(trace.duration_s)
            if reason is None:
                return
            self.kept += 1
            self._reasons[reason] += 1
            trace.root.attributes.setdefault("retained", reason)
            self._traces.append(trace)

    # -- read API (matches RingRecorder) ------------------------------------

    def traces(self) -> List["Trace"]:
        """A snapshot of retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> List["Trace"]:
        """Every retained trace with ``trace_id``, oldest first."""
        with self._lock:
            return [trace for trace in self._traces
                    if trace.trace_id == trace_id]

    def last(self) -> Optional["Trace"]:
        """The most recently retained trace (``None`` when empty)."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        """Drop retained traces and reset the duration window and counts."""
        with self._lock:
            self._traces.clear()
            self._durations.clear()
            self.seen = 0
            self.kept = 0
            for reason in self._reasons:
                self._reasons[reason] = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> Dict[str, object]:
        """Sampling effectiveness: volumes, keep rate, per-reason counts."""
        with self._lock:
            return {
                "seen": self.seen,
                "kept": self.kept,
                "retained": len(self._traces),
                "capacity": self.capacity,
                "window": self.window,
                "keep_rate": (self.kept / self.seen) if self.seen else 0.0,
                "reasons": dict(self._reasons),
            }


class JsonLinesRecorder(TraceRecorder):
    """Append one compact JSON document per trace to a file or stream.

    Accepts a path (opened lazily, append mode) or any writable text
    stream.  Each line is the trace's :meth:`~repro.obs.span.Span.to_dict`
    tree, so ``json.loads`` on one line rebuilds one trace via
    ``Trace.from_dict``.

    Long-running slow-query/trace logs must not fill the disk: pass
    ``max_bytes`` to cap the file size.  When appending a line would push
    the file past the cap, the file rotates -- ``log`` becomes ``log.1``,
    ``log.1`` becomes ``log.2``, ... keeping at most ``backups`` rotated
    files (the oldest is dropped) -- and the line lands in a fresh file.
    One line always fits: a single trace larger than ``max_bytes`` still
    gets written (to an otherwise-empty file) rather than being lost.
    Rotation applies to path targets only; caller-owned streams are the
    caller's to manage.
    """

    def __init__(self, target: Union[str, TextIO], *,
                 max_bytes: Optional[int] = None, backups: int = 3) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self._lock = threading.Lock()
        self._max_bytes = max_bytes
        self._backups = backups
        if isinstance(target, str):
            self._path: Optional[str] = target
            self._stream: Optional[TextIO] = None
        else:
            if max_bytes is not None:
                raise ValueError(
                    "max_bytes rotation requires a path target, not a stream")
            self._path = None
            self._stream = target

    def _rotate(self) -> None:
        """Shift ``path -> path.1 -> ... -> path.N`` (holding the lock)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        oldest = f"{self._path}.{self._backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self._backups - 1, 0, -1):
            source = f"{self._path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self._path}.{index + 1}")
        if self._backups > 0 and os.path.exists(self._path):
            os.replace(self._path, f"{self._path}.1")
        elif os.path.exists(self._path):
            os.remove(self._path)

    def record(self, trace: "Trace") -> None:
        line = json.dumps(trace.to_dict(), separators=(",", ":")) + "\n"
        with self._lock:
            if self._path is not None and self._max_bytes is not None:
                if self._stream is not None:
                    size = self._stream.tell()
                else:
                    try:
                        size = os.path.getsize(self._path)
                    except OSError:
                        size = 0
                if size and size + len(line) > self._max_bytes:
                    self._rotate()
            if self._stream is None:
                parent = os.path.dirname(self._path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._stream = open(self._path, "a", encoding="utf-8")
            self._stream.write(line)
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._path is not None and self._stream is not None:
                self._stream.close()
                self._stream = None


def resolve_recorder(spec: Union[None, str, TraceRecorder]) -> TraceRecorder:
    """Resolve an engine-constructor recorder spec.

    ``None`` or ``"null"`` -> :class:`NullRecorder`; ``"ring"`` -> a
    :class:`RingRecorder` with the default capacity; ``"tail"`` -> a
    :class:`TailSamplingRecorder` with the default knobs; any
    :class:`TraceRecorder` instance passes through.
    """
    if spec is None:
        return NullRecorder()
    if isinstance(spec, TraceRecorder):
        return spec
    if isinstance(spec, str):
        if spec == "null":
            return NullRecorder()
        if spec == "ring":
            return RingRecorder()
        if spec == "tail":
            return TailSamplingRecorder()
        raise ValueError(
            f"unknown recorder spec {spec!r}; expected 'null', 'ring' or "
            f"'tail'")
    raise TypeError(
        f"recorder spec must be None, a name, or a TraceRecorder, got "
        f"{type(spec).__name__}")

"""Telemetry export: Prometheus-style text exposition of engine metrics.

:func:`metrics_text` turns an :class:`~repro.service.metrics.EngineMetrics`
into the Prometheus text exposition format (version 0.0.4): counters become
``<ns>_counter_total{name=...}``, stage and per-shard timings become
``_seconds_total``/``_count_total`` pairs, and every
:class:`~repro.service.metrics.LatencyHistogram` becomes a real Prometheus
histogram — **cumulative** ``_bucket{le=...}`` series ending in ``+Inf``,
plus ``_sum`` and ``_count``.  The function only duck-types its argument
(``snapshot()`` + ``histograms()``), keeping :mod:`repro.obs` free of
runtime imports from the service layer.

The server exposes this as the ``metrics_text`` op so one TCP round-trip
yields a scrape-ready payload; there is deliberately no HTTP listener here
(no new dependency, and the serving protocol already has framing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # type hints only; no runtime dependency on the service layer
    from repro.service.metrics import EngineMetrics

__all__ = ["metrics_text"]


def _label(value: object) -> str:
    """Escape one label value per the exposition format."""
    text = str(value)
    text = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{text}"'


def _num(value: float) -> str:
    """Format a sample value; integral floats print without the trailing .0."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_text(metrics: "EngineMetrics", *, namespace: str = "repro") -> str:
    """Render ``metrics`` as Prometheus text exposition (one big string).

    ``metrics`` is anything with the :class:`EngineMetrics` read interface:
    ``snapshot()`` for counters/stages/shards and ``histograms()`` for the
    raw latency bucket counts (summaries alone cannot rebuild the
    cumulative ``le`` series).
    """
    snapshot = metrics.snapshot()
    lines: List[str] = []

    counters: Dict[str, int] = snapshot.get("counters", {})
    lines.append(f"# HELP {namespace}_counter_total Engine event counters.")
    lines.append(f"# TYPE {namespace}_counter_total counter")
    for name in sorted(counters):
        lines.append(f"{namespace}_counter_total{{name={_label(name)}}} "
                     f"{counters[name]}")

    stages = snapshot.get("stages", {})
    lines.append(f"# HELP {namespace}_stage_seconds_total Cumulative "
                 f"wall-clock seconds per pipeline stage.")
    lines.append(f"# TYPE {namespace}_stage_seconds_total counter")
    for stage in sorted(stages):
        lines.append(f"{namespace}_stage_seconds_total{{stage={_label(stage)}}} "
                     f"{_num(stages[stage]['total_seconds'])}")
    lines.append(f"# TYPE {namespace}_stage_count_total counter")
    for stage in sorted(stages):
        lines.append(f"{namespace}_stage_count_total{{stage={_label(stage)}}} "
                     f"{stages[stage]['count']}")

    shards = snapshot.get("shards", {})
    if shards:
        lines.append(f"# HELP {namespace}_shard_seconds_total Cumulative "
                     f"wall-clock seconds per shard stage and shard id.")
        lines.append(f"# TYPE {namespace}_shard_seconds_total counter")
        for stage in sorted(shards):
            for shard_id in sorted(shards[stage]):
                entry = shards[stage][shard_id]
                lines.append(
                    f"{namespace}_shard_seconds_total{{stage={_label(stage)},"
                    f"shard={_label(shard_id)}}} "
                    f"{_num(entry['total_seconds'])}")

    histograms = metrics.histograms()
    if histograms:
        lines.append(f"# HELP {namespace}_latency_seconds End-to-end "
                     f"serving latency per query kind.")
        lines.append(f"# TYPE {namespace}_latency_seconds histogram")
        for name in sorted(histograms):
            histogram = histograms[name]
            cumulative = 0
            for bound, bucket_count in zip(histogram.bounds, histogram.counts):
                cumulative += bucket_count
                lines.append(
                    f"{namespace}_latency_seconds_bucket{{kind={_label(name)},"
                    f"le={_label(format(bound, '.6g'))}}} {cumulative}")
            lines.append(
                f"{namespace}_latency_seconds_bucket{{kind={_label(name)},"
                f'le="+Inf"}} {histogram.count}')
            lines.append(f"{namespace}_latency_seconds_sum"
                         f"{{kind={_label(name)}}} {_num(histogram.total)}")
            lines.append(f"{namespace}_latency_seconds_count"
                         f"{{kind={_label(name)}}} {histogram.count}")

    return "\n".join(lines) + "\n"

"""Telemetry export: Prometheus-style text exposition of engine metrics.

:func:`metrics_text` turns an :class:`~repro.service.metrics.EngineMetrics`
into the Prometheus text exposition format (version 0.0.4): counters become
``<ns>_counter_total{name=...}``, stage and per-shard timings become
``_seconds_total``/``_count_total`` pairs, and every
:class:`~repro.service.metrics.LatencyHistogram` becomes a real Prometheus
histogram — **cumulative** ``_bucket{le=...}`` series ending in ``+Inf``,
plus ``_sum`` and ``_count``.  When the engine runs the multiprocess data
plane, per-process series (``<ns>_process_*`` tagged
``process="parent|worker-<i>"``) break the fleet totals down by where the
work ran, and sampled resource gauges (RSS, CPU, arena bytes, queue
depths) are emitted as ``gauge`` families.  The function only duck-types
its argument
(``snapshot()`` + ``histograms()``), keeping :mod:`repro.obs` free of
runtime imports from the service layer.

The server exposes this as the ``metrics_text`` op so one TCP round-trip
yields a scrape-ready payload; there is deliberately no HTTP listener here
(no new dependency, and the serving protocol already has framing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # type hints only; no runtime dependency on the service layer
    from repro.service.metrics import EngineMetrics

__all__ = ["metrics_text"]

#: HELP text for the gauge families the resource sampler emits; anything
#: not listed falls back to a generic description.
_GAUGE_HELP = {
    "process_cpu_seconds": "Cumulative CPU seconds (user+system) per process.",
    "process_rss_bytes": "Resident set size in bytes per process.",
    "shm_arena_bytes": "Bytes of live owned shared-memory column arenas.",
    "shm_arenas": "Count of live owned shared-memory column arenas.",
    "pool_queue_depth": "Outstanding tasks per shard-worker queue.",
    "pool_workers_alive": "Live shard worker processes.",
    "admission_inflight": "Queries currently holding an admission slot.",
    "admission_queue_depth": "Queries waiting for an admission slot.",
    "cache_entries": "Entries resident in the engine result cache.",
    "cache_capacity": "Configured result cache capacity.",
    "cache_bytes": "Approximate bytes held by the engine result cache.",
}


def _label(value: object) -> str:
    """Escape one label value per the exposition format."""
    text = str(value)
    text = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{text}"'


def _num(value: float) -> str:
    """Format a sample value; integral floats print without the trailing .0."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_text(metrics: "EngineMetrics", *, namespace: str = "repro",
                 clients: Optional[Dict[str, Dict[str, float]]] = None) -> str:
    """Render ``metrics`` as Prometheus text exposition (one big string).

    ``metrics`` is anything with the :class:`EngineMetrics` read interface:
    ``snapshot()`` for counters/stages/shards and ``histograms()`` for the
    raw latency bucket counts (summaries alone cannot rebuild the
    cumulative ``le`` series).

    ``clients`` is an optional per-client accounting mapping
    (``client id -> {field -> cumulative value}``, the engine's
    ``client_ledgers()``); each field becomes a ``client=``-labelled
    counter series.  Label cardinality is bounded at the source: the engine
    tracks at most ``max_tracked_clients`` ledgers (LRU-evicted), so the
    scrape payload cannot grow without bound.
    """
    snapshot = metrics.snapshot()
    lines: List[str] = []

    counters: Dict[str, int] = snapshot.get("counters", {})
    lines.append(f"# HELP {namespace}_counter_total Engine event counters.")
    lines.append(f"# TYPE {namespace}_counter_total counter")
    for name in sorted(counters):
        lines.append(f"{namespace}_counter_total{{name={_label(name)}}} "
                     f"{counters[name]}")

    stages = snapshot.get("stages", {})
    lines.append(f"# HELP {namespace}_stage_seconds_total Cumulative "
                 f"wall-clock seconds per pipeline stage.")
    lines.append(f"# TYPE {namespace}_stage_seconds_total counter")
    for stage in sorted(stages):
        lines.append(f"{namespace}_stage_seconds_total{{stage={_label(stage)}}} "
                     f"{_num(stages[stage]['total_seconds'])}")
    lines.append(f"# HELP {namespace}_stage_count_total Observations "
                 f"per pipeline stage.")
    lines.append(f"# TYPE {namespace}_stage_count_total counter")
    for stage in sorted(stages):
        lines.append(f"{namespace}_stage_count_total{{stage={_label(stage)}}} "
                     f"{stages[stage]['count']}")

    shards = snapshot.get("shards", {})
    if shards:
        lines.append(f"# HELP {namespace}_shard_seconds_total Cumulative "
                     f"wall-clock seconds per shard stage and shard id.")
        lines.append(f"# TYPE {namespace}_shard_seconds_total counter")
        for stage in sorted(shards):
            for shard_id in sorted(shards[stage]):
                entry = shards[stage][shard_id]
                lines.append(
                    f"{namespace}_shard_seconds_total{{stage={_label(stage)},"
                    f"shard={_label(shard_id)}}} "
                    f"{_num(entry['total_seconds'])}")

    # Per-process breakdown: present when the fleet has worker children
    # (snapshot()["processes"]) -- the untagged series above stay the
    # whole-fleet merge, these attribute the same work to where it ran.
    processes = snapshot.get("processes", {})
    if processes:
        lines.append(f"# HELP {namespace}_process_counter_total Engine "
                     f"event counters per process.")
        lines.append(f"# TYPE {namespace}_process_counter_total counter")
        for process in sorted(processes):
            for name in sorted(processes[process].get("counters", {})):
                lines.append(
                    f"{namespace}_process_counter_total"
                    f"{{process={_label(process)},name={_label(name)}}} "
                    f"{processes[process]['counters'][name]}")
        lines.append(f"# HELP {namespace}_process_stage_seconds_total "
                     f"Cumulative stage seconds per process.")
        lines.append(f"# TYPE {namespace}_process_stage_seconds_total counter")
        for process in sorted(processes):
            stages_for = processes[process].get("stages", {})
            for stage in sorted(stages_for):
                lines.append(
                    f"{namespace}_process_stage_seconds_total"
                    f"{{process={_label(process)},stage={_label(stage)}}} "
                    f"{_num(stages_for[stage]['total_seconds'])}")
        lines.append(f"# HELP {namespace}_process_shard_seconds_total "
                     f"Cumulative per-shard seconds per process.")
        lines.append(f"# TYPE {namespace}_process_shard_seconds_total counter")
        for process in sorted(processes):
            shards_for = processes[process].get("shards", {})
            for stage in sorted(shards_for):
                for shard_id in sorted(shards_for[stage]):
                    entry = shards_for[stage][shard_id]
                    lines.append(
                        f"{namespace}_process_shard_seconds_total"
                        f"{{process={_label(process)},stage={_label(stage)},"
                        f"shard={_label(shard_id)}}} "
                        f"{_num(entry['total_seconds'])}")

    # Per-client accounting: one series per (client, ledger field).  The
    # source mapping is LRU-bounded, so cardinality is too.
    if clients:
        lines.append(f"# HELP {namespace}_client_total Per-client "
                     f"cumulative query accounting.")
        lines.append(f"# TYPE {namespace}_client_total counter")
        for client in sorted(clients):
            ledger = clients[client]
            for field in sorted(ledger):
                lines.append(
                    f"{namespace}_client_total{{client={_label(client)},"
                    f"name={_label(field)}}} {_num(float(ledger[field]))}")

    # Sampled gauges (resource sampler output): one family per gauge name,
    # series distinguished by labels (typically process="parent|worker-i").
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        help_text = _GAUGE_HELP.get(name, "Sampled gauge.")
        lines.append(f"# HELP {namespace}_{name} {help_text}")
        lines.append(f"# TYPE {namespace}_{name} gauge")
        for series in gauges[name]:
            labels = series.get("labels", {})
            if labels:
                rendered = ",".join(
                    f"{key}={_label(labels[key])}" for key in sorted(labels))
                lines.append(f"{namespace}_{name}{{{rendered}}} "
                             f"{_num(series['value'])}")
            else:
                lines.append(f"{namespace}_{name} {_num(series['value'])}")

    histograms = metrics.histograms()
    if histograms:
        lines.append(f"# HELP {namespace}_latency_seconds End-to-end "
                     f"serving latency per query kind.")
        lines.append(f"# TYPE {namespace}_latency_seconds histogram")
        for name in sorted(histograms):
            histogram = histograms[name]
            cumulative = 0
            for bound, bucket_count in zip(histogram.bounds, histogram.counts):
                cumulative += bucket_count
                lines.append(
                    f"{namespace}_latency_seconds_bucket{{kind={_label(name)},"
                    f"le={_label(format(bound, '.6g'))}}} {cumulative}")
            lines.append(
                f"{namespace}_latency_seconds_bucket{{kind={_label(name)},"
                f'le="+Inf"}} {histogram.count}')
            lines.append(f"{namespace}_latency_seconds_sum"
                         f"{{kind={_label(name)}}} {_num(histogram.total)}")
            lines.append(f"{namespace}_latency_seconds_count"
                         f"{{kind={_label(name)}}} {histogram.count}")

    return "\n".join(lines) + "\n"

"""Dependency-free tracing and telemetry for the MaxRS serving stack.

One query crosses six layers — asyncio admission, coalescing, the result
cache, dispatch, shard fan-out, the sweep backends, and persist/EM block
I/O — and :mod:`repro.obs` is the spine that attributes wall-clock time to
each of them per request.  The pieces:

* :class:`Span` / :class:`Trace` / :class:`Tracer`
  (:mod:`repro.obs.span`) — nested timed spans carried through threads and
  asyncio tasks via ``contextvars``; :func:`span` opens a child of the
  ambient span (a no-op outside a trace).
* recorders (:mod:`repro.obs.recorder`) — :class:`NullRecorder` (default,
  disables tracing at near-zero cost), :class:`RingRecorder` (in-memory,
  feeds ``stats()["traces"]`` and the TCP ``trace`` op),
  :class:`TailSamplingRecorder` (keeps only slow/error/degraded/top-p%
  traces under a memory cap — the production introspection default),
  :class:`JsonLinesRecorder` (file export).
* trace analytics (:mod:`repro.obs.analyze`) — :func:`profile` folds
  retained traces into a per-stage self-time breakdown (the engine's
  ``trace_profile`` op), :func:`critical_path` extracts the
  latency-bounding span chain of one trace.
* :func:`metrics_text` (:mod:`repro.obs.export`) — Prometheus-style text
  exposition of :class:`~repro.service.metrics.EngineMetrics`, including
  cumulative latency-histogram buckets, per-process worker series and
  sampled resource gauges.
* fleet health (:mod:`repro.obs.health`) — :class:`ResourceSampler` polls
  per-process CPU/RSS, shared-memory arena bytes, queue depths and cache
  occupancy into gauges; :class:`HealthMonitor` aggregates named checks
  into ``healthz``/``readyz`` verdicts; :class:`SLOTracker` watches
  rolling-window latency/error objectives and fires burn-rate alerts into
  pluggable sinks (:func:`log_alert_sink`, :func:`json_lines_alert_sink`).

Wire propagation: :class:`~repro.aio.client.AsyncQueryClient` stamps its
ambient ``trace_id`` into every request; :class:`~repro.aio.server.MaxRSServer`
continues the trace server-side, and the client can fetch the server's half
with the ``trace`` op.  See ``docs/observability.md`` for the span taxonomy
and ``examples/traced_query.py`` for a rendered trace tree.
"""

from repro.obs.analyze import (critical_path, profile, render_profile,
                               span_self_seconds)
from repro.obs.export import metrics_text
from repro.obs.health import (HealthMonitor, ResourceSampler, SLObjective,
                              SLOTracker, arena_gauge_source,
                              json_lines_alert_sink, log_alert_sink,
                              process_gauge_source, read_proc_stats)
from repro.obs.recorder import (JsonLinesRecorder, NullRecorder, RingRecorder,
                                TailSamplingRecorder, TraceRecorder,
                                resolve_recorder)
from repro.obs.span import (NOOP_SPAN, Span, Trace, Tracer, current_span,
                            current_trace_id, new_trace_id, span)

__all__ = [
    "HealthMonitor",
    "JsonLinesRecorder",
    "NOOP_SPAN",
    "NullRecorder",
    "ResourceSampler",
    "RingRecorder",
    "SLOTracker",
    "SLObjective",
    "Span",
    "TailSamplingRecorder",
    "Trace",
    "TraceRecorder",
    "Tracer",
    "arena_gauge_source",
    "critical_path",
    "current_span",
    "current_trace_id",
    "json_lines_alert_sink",
    "log_alert_sink",
    "metrics_text",
    "new_trace_id",
    "process_gauge_source",
    "profile",
    "read_proc_stats",
    "render_profile",
    "span",
    "span_self_seconds",
]

"""Dependency-free tracing and telemetry for the MaxRS serving stack.

One query crosses six layers — asyncio admission, coalescing, the result
cache, dispatch, shard fan-out, the sweep backends, and persist/EM block
I/O — and :mod:`repro.obs` is the spine that attributes wall-clock time to
each of them per request.  The pieces:

* :class:`Span` / :class:`Trace` / :class:`Tracer`
  (:mod:`repro.obs.span`) — nested timed spans carried through threads and
  asyncio tasks via ``contextvars``; :func:`span` opens a child of the
  ambient span (a no-op outside a trace).
* recorders (:mod:`repro.obs.recorder`) — :class:`NullRecorder` (default,
  disables tracing at near-zero cost), :class:`RingRecorder` (in-memory,
  feeds ``stats()["traces"]`` and the TCP ``trace`` op),
  :class:`JsonLinesRecorder` (file export).
* :func:`metrics_text` (:mod:`repro.obs.export`) — Prometheus-style text
  exposition of :class:`~repro.service.metrics.EngineMetrics`, including
  cumulative latency-histogram buckets.

Wire propagation: :class:`~repro.aio.client.AsyncQueryClient` stamps its
ambient ``trace_id`` into every request; :class:`~repro.aio.server.MaxRSServer`
continues the trace server-side, and the client can fetch the server's half
with the ``trace`` op.  See ``docs/observability.md`` for the span taxonomy
and ``examples/traced_query.py`` for a rendered trace tree.
"""

from repro.obs.export import metrics_text
from repro.obs.recorder import (JsonLinesRecorder, NullRecorder, RingRecorder,
                                TraceRecorder, resolve_recorder)
from repro.obs.span import (NOOP_SPAN, Span, Trace, Tracer, current_span,
                            current_trace_id, new_trace_id, span)

__all__ = [
    "JsonLinesRecorder",
    "NOOP_SPAN",
    "NullRecorder",
    "RingRecorder",
    "Span",
    "Trace",
    "TraceRecorder",
    "Tracer",
    "current_span",
    "current_trace_id",
    "metrics_text",
    "new_trace_id",
    "resolve_recorder",
    "span",
]

"""Spans, traces, and the :class:`Tracer` — the core of :mod:`repro.obs`.

A **span** is one timed stage of one query: it has a name from the span
taxonomy (``engine.query``, ``cache.lookup``, ``backend.sweep``, ...), a
wall-clock start, a duration, free-form attributes, and children.  Spans of
one request form a tree; the tree plus its identity is a **trace**.

The design constraint that shapes everything here is the serving engine's
execution model: a query enters on an asyncio task, hops into the engine's
thread pool via ``run_in_executor``, and may fan out again across shard
worker threads.  The *current span* therefore lives in a
:class:`contextvars.ContextVar` — the only ambient-state mechanism in the
stdlib that is simultaneously task-local under asyncio and copyable across
thread hand-offs.  The hand-offs themselves do **not** copy context
automatically (``run_in_executor`` is a plain ``executor.submit`` under the
hood), so the call sites in :mod:`repro.aio.engine` and
:mod:`repro.service.sharding` wrap submitted work in
``contextvars.copy_context().run`` explicitly.

The second constraint is overhead: every hot path in the engine calls
:func:`span`, so the *disabled* path must be near-free.  ``span()`` is a
single ``ContextVar.get`` plus a ``None`` check; when no trace is active it
returns one shared no-op singleton and allocates nothing.  Real spans only
materialise inside an active trace, and traces only start when a
:class:`Tracer` is enabled (a non-null recorder or a slow-query threshold)
or when a remote caller supplied a ``trace_id`` to continue.

Thread-safety: a span's *children* list may be appended to from several
shard worker threads at once; ``list.append`` is atomic under the GIL, and
each child's own fields are written only by the thread that runs it.  The
span that *owns* a subtree is always finished after its children, so the
recorded tree is consistent by construction.
"""

from __future__ import annotations

import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.recorder import NullRecorder, TraceRecorder

__all__ = ["Span", "Trace", "Tracer", "current_span", "current_trace_id",
           "new_trace_id", "span"]

#: The ambient current span.  ``None`` means "no active trace": the hot-path
#: sentinel that keeps disabled tracing near-free.
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span",
                                                    default=None)


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (the identity shared by every span)."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(4).hex()


class Span:
    """One timed, attributed stage of a trace.

    Spans are created by :func:`span` (child of the ambient span) or by
    :meth:`Tracer.trace` (root), used as context managers, and read back
    through :class:`Trace`.  ``duration_s`` is ``None`` while the span is
    still open.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attributes",
                 "children", "status", "error", "start_unix", "duration_s",
                 "_start_perf")

    def __init__(self, name: str, trace_id: str, *,
                 parent_id: Optional[str] = None,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List[Span] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.start_unix = time.time()
        self.duration_s: Optional[float] = None
        self._start_perf = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-representable values only, please)."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def finish(self, *, error: Optional[BaseException] = None) -> None:
        """Close the span (idempotent); records duration and error status."""
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._start_perf
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"

    # -- traversal ---------------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        """Pre-order walk over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready nested dict (the wire/export representation)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (ids preserved)."""
        span_ = Span(payload["name"], payload["trace_id"],
                     parent_id=payload.get("parent_id"),
                     attributes=payload.get("attributes"))
        span_.span_id = payload.get("span_id", span_.span_id)
        span_.start_unix = payload.get("start_unix", span_.start_unix)
        span_.duration_s = payload.get("duration_s")
        span_.status = payload.get("status", "ok")
        span_.error = payload.get("error")
        span_.children = [Span.from_dict(child)
                          for child in payload.get("children", ())]
        return span_

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace_id={self.trace_id!r}, "
                f"duration_s={self.duration_s!r})")


class Trace:
    """A finished span tree plus convenience accessors used by tests/tools."""

    __slots__ = ("root",)

    def __init__(self, root: Span) -> None:
        self.root = root

    @property
    def trace_id(self) -> str:
        return self.root.trace_id

    @property
    def name(self) -> str:
        return self.root.name

    @property
    def duration_s(self) -> float:
        return self.root.duration_s or 0.0

    def spans(self) -> List[Span]:
        """Every span of the trace in pre-order."""
        return list(self.root.iter_spans())

    def find(self, name: str) -> Optional[Span]:
        """The first span with ``name`` (pre-order), or ``None``."""
        for span_ in self.root.iter_spans():
            if span_.name == name:
                return span_
        return None

    def find_all(self, name_prefix: str) -> List[Span]:
        """Every span whose name starts with ``name_prefix``, in pre-order."""
        return [span_ for span_ in self.root.iter_spans()
                if span_.name.startswith(name_prefix)]

    def summary(self) -> Dict[str, Any]:
        """The compact per-trace record surfaced by ``stats()["traces"]``."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_unix": self.root.start_unix,
            "duration_s": self.duration_s,
            "spans": sum(1 for _ in self.root.iter_spans()),
            "status": self.root.status,
        }

    def to_dict(self) -> Dict[str, Any]:
        return self.root.to_dict()

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Trace":
        return Trace(Span.from_dict(payload))

    def render(self) -> str:
        """A human-readable tree, one line per span (see the example)."""
        lines: List[str] = []
        _render_span(self.root, "", "", lines)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, trace_id={self.trace_id!r})"


def _format_attributes(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def _render_span(span_: Span, prefix: str, child_prefix: str,
                 lines: List[str]) -> None:
    if span_.duration_s is None:
        timing = "   (open)"
    else:
        timing = f"{span_.duration_s * 1e3:9.3f} ms"
    flag = "" if span_.status == "ok" else f"  !{span_.error}"
    lines.append(f"{prefix}{span_.name:<{max(1, 44 - len(prefix))}}{timing}"
                 f"{_format_attributes(span_.attributes)}{flag}")
    for index, child in enumerate(span_.children):
        last = index == len(span_.children) - 1
        connector = "`- " if last else "|- "
        extension = "   " if last else "|  "
        _render_span(child, child_prefix + connector,
                     child_prefix + extension, lines)


#: Shared do-nothing span returned on every disabled-path ``span()`` call.
class _NoopSpan:
    """Absorbs the span API at near-zero cost when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def set_attributes(self, **attributes: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager that installs a span as the ambient current span."""

    __slots__ = ("span", "_tracer", "_token")

    def __init__(self, span_: Span, tracer: Optional["Tracer"] = None) -> None:
        self.span = span_
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        _CURRENT.reset(self._token)
        self.span.finish(error=exc if isinstance(exc, BaseException) else None)
        if self._tracer is not None:
            self._tracer._finalize(self.span)
        return None


def current_span() -> Optional[Span]:
    """The ambient span of this task/thread context (``None`` outside one)."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """The ambient trace id, or ``None`` when no trace is active."""
    span_ = _CURRENT.get()
    return None if span_ is None else span_.trace_id


def span(name: str, **attributes: Any):
    """Open a child span of the ambient span (no-op outside a trace).

    This is the one instrumentation call sprinkled through the engine::

        with obs.span("backend.sweep", backend=backend.name) as sp:
            ...
            sp.set_attribute("events", count)

    Outside an active trace it returns a shared no-op singleton: one
    ``ContextVar.get`` and a ``None`` check, no allocation — the property
    the ``NullRecorder`` overhead guard in ``benchmarks/`` enforces.
    """
    parent = _CURRENT.get()
    if parent is None:
        return NOOP_SPAN
    child = Span(name, parent.trace_id, parent_id=parent.span_id,
                 attributes=attributes)
    # Visible in the tree immediately; list.append is atomic under the GIL,
    # so concurrent shard workers can attach children to one parent safely.
    parent.children.append(child)
    return _ActiveSpan(child)


class Tracer:
    """Starts traces, hands finished ones to a recorder, flags slow queries.

    Parameters
    ----------
    recorder:
        Where finished traces go.  Defaults to :class:`NullRecorder`, which
        also *disables* trace creation entirely (the near-zero-overhead
        production default).  Pass a
        :class:`~repro.obs.recorder.RingRecorder` for tests and
        ``stats()["traces"]``, or a
        :class:`~repro.obs.recorder.JsonLinesRecorder` to export.
    slow_query_threshold_s:
        When set, slow spans are rendered and written to
        ``slow_query_sink`` even if the recorder is null — the
        ``slow_query_log`` facility.  Within each finished trace the
        *outermost* spans named in ``slow_query_span_names`` are checked
        individually (a server-side batch holding several ``aio.query``
        children logs each slow query where it ran); a trace containing
        none of those names falls back to the root-span check.
    slow_query_sink:
        Callable receiving the rendered slow-trace text; defaults to
        printing to stderr.
    slow_query_span_names:
        Span names treated as "a query" by the slow-query log.  Defaults
        to ``("engine.query", "aio.query")`` — the sync engine root and
        the async per-query span.
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None, *,
                 slow_query_threshold_s: Optional[float] = None,
                 slow_query_sink: Optional[Callable[[str], None]] = None,
                 slow_query_span_names: tuple = ("engine.query",
                                                 "aio.query")) -> None:
        self.recorder: TraceRecorder = (recorder if recorder is not None
                                        else NullRecorder())
        self.slow_query_threshold_s = slow_query_threshold_s
        self.slow_query_span_names = tuple(slow_query_span_names)
        self._slow_sink = slow_query_sink
        self._lock = threading.Lock()
        self.slow_queries = 0

    # -- configuration -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether this tracer starts traces of its own accord."""
        return (self.slow_query_threshold_s is not None
                or not isinstance(self.recorder, NullRecorder))

    def slow_query_log(self, threshold_s: Optional[float], *,
                       sink: Optional[Callable[[str], None]] = None) -> None:
        """(Re)configure the slow-query log; ``None`` switches it off."""
        if threshold_s is not None and threshold_s < 0:
            raise ValueError(
                f"slow-query threshold must be >= 0, got {threshold_s}")
        self.slow_query_threshold_s = threshold_s
        if sink is not None:
            self._slow_sink = sink

    # -- trace lifecycle ---------------------------------------------------

    def trace(self, name: str, *, trace_id: Optional[str] = None,
              **attributes: Any):
        """Open a span: child of the ambient span if one is active, else a
        new root trace.

        ``trace_id`` continues a caller-supplied trace (the wire-propagation
        path); it is honoured even when the tracer is otherwise disabled,
        so a traced client can see server-side spans without the server
        opting in.  With no ambient span, no ``trace_id``, and a disabled
        tracer this is a no-op.
        """
        parent = _CURRENT.get()
        if parent is not None:
            child = Span(name, parent.trace_id, parent_id=parent.span_id,
                         attributes=attributes)
            parent.children.append(child)
            return _ActiveSpan(child)
        if not self.enabled and trace_id is None:
            return NOOP_SPAN
        root = Span(name, trace_id if trace_id else new_trace_id(),
                    attributes=attributes)
        return _ActiveSpan(root, tracer=self)

    def _finalize(self, root: Span) -> None:
        """Record a finished root span; fire the slow-query log if due."""
        trace = Trace(root)
        self.recorder.record(trace)
        threshold = self.slow_query_threshold_s
        if threshold is None:
            return
        # Check the outermost query spans individually: a server-side trace
        # roots at "server.request" and may hold several "aio.query"
        # children, and each slow one deserves its own log entry where it
        # ran.  Descent stops at the first match per branch so a nested
        # "engine.query" under its "aio.query" never double-fires.
        query_spans: List[Span] = []
        _collect_outermost(root, self.slow_query_span_names, query_spans)
        fired = False
        for span_ in query_spans:
            if (span_.duration_s or 0.0) >= threshold:
                fired = True
                self._fire_slow(span_)
        # Traces without query spans (register, batch admin ops) keep the
        # original root-level behaviour.
        if not fired and not query_spans and trace.duration_s >= threshold:
            self._fire_slow(root)

    def _fire_slow(self, span_: Span) -> None:
        """Render ``span_``'s subtree into the slow-query sink."""
        with self._lock:
            self.slow_queries += 1
        sink = self._slow_sink or _default_slow_sink
        subtree = Trace(span_)
        sink(f"SLOW QUERY trace={span_.trace_id} "
             f"{subtree.duration_s * 1e3:.3f} ms\n{subtree.render()}")

    # -- introspection -----------------------------------------------------

    def trace_summaries(self) -> List[Dict[str, Any]]:
        """Summaries of retained traces (empty for non-retaining recorders)."""
        traces = getattr(self.recorder, "traces", None)
        if traces is None:
            return []
        return [trace.summary() for trace in traces()]


def _collect_outermost(span_: Span, names: tuple,
                       out: List[Span]) -> None:
    """Collect the shallowest spans named in ``names`` (one per branch)."""
    if span_.name in names:
        out.append(span_)
        return
    for child in span_.children:
        _collect_outermost(child, names, out)


def _default_slow_sink(text: str) -> None:  # pragma: no cover - io glue
    import sys

    print(text, file=sys.stderr)

"""Fleet health: resource sampling, health/readiness checks, SLO burn rates.

PR 7 put the data plane on real processes; this module is the telemetry
that makes such a fleet operable.  Three pieces, all dependency-free and
engine-agnostic (the engine wires them up, but they only see callables):

* :class:`ResourceSampler` -- polls pluggable *sources* into
  :class:`~repro.service.metrics.EngineMetrics` gauges: per-process CPU and
  RSS (``/proc`` with ``os.times()``/``getrusage`` fallback), shared-memory
  arena bytes from the :mod:`repro.service.shm` registry, worker queue
  depths, cache occupancy.  Sampling is pull-by-default (``sample()``
  whenever ``stats()``/``metrics_text`` wants fresh gauges) with an
  optional background thread for push-style deployments.
* :class:`HealthMonitor` -- named checks (degraded/broken executor, worker
  liveness, persist-dir writability, arena leaks) aggregated into
  ``healthz`` (liveness) and ``readyz`` (readiness) verdicts.  A check
  reports ``ok`` / ``degraded`` / ``failing``; the aggregate is the worst.
* :class:`SLOTracker` -- rolling-window latency/error-rate objectives with
  **burn-rate** alerting: an objective with target 99.9% has an error
  budget of 0.1%, and burn rate is the fraction of bad events divided by
  that budget -- burn rate 1.0 means the budget is being consumed exactly
  as fast as it accrues; sustained >1.0 means the SLO will be missed.
  Alerts fire on state *transitions* (firing/resolved) into pluggable
  sinks: :func:`log_alert_sink`, :func:`json_lines_alert_sink`, or any
  callable -- a machine-readable shed signal for a future gateway tier.

See ``docs/observability.md`` ("Fleet telemetry & health") for the gauge
catalogue and configuration examples, and ``examples/health_monitor.py``
for a live one-screen fleet status rendering.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Mapping,
                    Optional, Sequence, Tuple, Union)

if TYPE_CHECKING:  # type hints only; no runtime service-layer import
    from repro.service.metrics import EngineMetrics

__all__ = [
    "HealthMonitor",
    "ResourceSampler",
    "SLOTracker",
    "SLObjective",
    "arena_gauge_source",
    "json_lines_alert_sink",
    "log_alert_sink",
    "process_gauge_source",
    "read_proc_stats",
]

#: Check/aggregate severity ordering: the aggregate is the worst member.
_STATUS_ORDER = {"ok": 0, "degraded": 1, "failing": 2}

#: A check returns ``(status, detail)``, a bare status string, or a dict
#: with those keys; :class:`HealthMonitor` normalises all three.
CheckResult = Union[str, Tuple[str, str], Dict[str, str]]


# --------------------------------------------------------------------------- #
# Resource sampling
# --------------------------------------------------------------------------- #

def read_proc_stats(pid: int) -> Optional[Tuple[float, int]]:
    """``(cpu_seconds, rss_bytes)`` for one pid from ``/proc``, else None.

    CPU is user+system clock ticks from ``/proc/<pid>/stat`` (fields 14/15,
    counted after the parenthesised comm -- which may itself contain spaces
    and parentheses, hence the rpartition); RSS is resident pages from
    ``/proc/<pid>/statm``.  Returns ``None`` off Linux or for a dead pid --
    callers fall back to :func:`os.times` for their own process.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
        fields = stat.rpartition(")")[2].split()
        # fields[0] is state (field 3 of the file): utime/stime are file
        # fields 14/15, i.e. indices 11/12 after the comm.
        ticks = float(fields[11]) + float(fields[12])
        hertz = os.sysconf("SC_CLK_TCK")
        with open(f"/proc/{pid}/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return ticks / hertz, pages * os.sysconf("SC_PAGE_SIZE")
    except Exception:
        return None


def _own_process_stats() -> Tuple[float, int]:
    """Portable fallback for the calling process: ``os.times`` CPU plus a
    best-effort peak-RSS from ``getrusage`` (0 when unavailable)."""
    times = os.times()
    cpu = times.user + times.system
    rss = 0
    try:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS; Linux is the target.
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platforms without getrusage
        pass
    return cpu, rss


class ResourceSampler:
    """Poll pluggable gauge sources into an :class:`EngineMetrics`.

    A *source* is ``fn(metrics)`` that calls
    :meth:`~repro.service.metrics.EngineMetrics.set_gauge`; sources are
    isolated (one raising never blocks the others) and cheap by contract --
    the engine samples on-demand from ``stats()``/``metrics_text``, so a
    slow source would tax every scrape.  ``interval_s`` additionally runs a
    background daemon thread for deployments that want gauges fresh without
    scraping.
    """

    def __init__(self, metrics: "EngineMetrics", *,
                 interval_s: Optional[float] = None) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self._metrics = metrics
        self._interval = interval_s
        self._sources: List[Callable[["EngineMetrics"], None]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0

    def add_source(self, source: Callable[["EngineMetrics"], None]) -> None:
        """Register one gauge source (called on every :meth:`sample`)."""
        with self._lock:
            self._sources.append(source)

    def sample(self) -> None:
        """Run every source once, isolating per-source failures."""
        with self._lock:
            sources = list(self._sources)
        for source in sources:
            try:
                source(self._metrics)
            except Exception:  # noqa: BLE001 - a source must not break polls
                pass
        self.samples += 1

    def start(self) -> None:
        """Start the background poll thread (no-op without ``interval_s``)."""
        if self._interval is None or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-resource-sampler")
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample()

    def stop(self) -> None:
        """Stop the background thread (idempotent; safe without one)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)


def process_gauge_source(pids: Callable[[], Mapping[str, Optional[int]]]
                         ) -> Callable[["EngineMetrics"], None]:
    """A sampler source setting per-process CPU/RSS gauges.

    ``pids`` returns ``{tag: pid}`` (e.g. ``{"parent": 1234,
    "worker-0": 1240}``); dead or unreadable pids simply drop out of the
    gauge set on the next poll.  The calling process falls back to
    ``os.times``/``getrusage`` where ``/proc`` is unavailable.
    """
    def source(metrics: "EngineMetrics") -> None:
        own = os.getpid()
        cpu_series, rss_series = [], []
        for tag, pid in pids().items():
            if pid is None:
                continue
            stats = read_proc_stats(pid)
            if stats is None and pid == own:
                stats = _own_process_stats()
            if stats is None:
                continue
            cpu, rss = stats
            cpu_series.append(({"process": tag}, cpu))
            rss_series.append(({"process": tag}, rss))
        metrics.replace_gauge("process_cpu_seconds", cpu_series)
        metrics.replace_gauge("process_rss_bytes", rss_series)
    return source


def arena_gauge_source() -> Callable[["EngineMetrics"], None]:
    """A sampler source for shared-memory arena occupancy.

    Reads the process-global owner registry in :mod:`repro.service.shm`
    (imported lazily: :mod:`repro.obs` stays importable without numpy).
    """
    def source(metrics: "EngineMetrics") -> None:
        from repro.service import shm

        entries = shm.arena_registry()
        metrics.set_gauge("shm_arenas", len(entries))
        metrics.set_gauge("shm_arena_bytes",
                          sum(entry["bytes"] for entry in entries))
    return source


# --------------------------------------------------------------------------- #
# Health checks
# --------------------------------------------------------------------------- #

def _normalise(result: CheckResult) -> Dict[str, str]:
    if isinstance(result, str):
        status, detail = result, ""
    elif isinstance(result, dict):
        status = result.get("status", "failing")
        detail = str(result.get("detail", ""))
    else:
        status, detail = result
    if status not in _STATUS_ORDER:
        return {"status": "failing",
                "detail": f"check returned unknown status {status!r}"}
    return {"status": status, "detail": str(detail)}


class HealthMonitor:
    """Named health checks aggregated into liveness/readiness verdicts.

    A check is ``fn() -> (status, detail)`` with status ``"ok"`` /
    ``"degraded"`` / ``"failing"``; a raising check reports ``failing``
    with the exception text (monitoring must never take the service down).
    ``liveness`` / ``readiness`` flags scope a check to :meth:`healthz` /
    :meth:`readyz` respectively -- e.g. an unwritable persist dir makes an
    engine *not ready* (snapshots would fail) while the process is still
    perfectly alive.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: List[Tuple[str, Callable[[], CheckResult],
                                 bool, bool]] = []

    def add_check(self, name: str, check: Callable[[], CheckResult], *,
                  liveness: bool = True, readiness: bool = True) -> None:
        """Register one named check (evaluation order = registration order)."""
        with self._lock:
            self._checks.append((name, check, liveness, readiness))

    def _evaluate(self, *, readiness: bool) -> Dict[str, object]:
        with self._lock:
            checks = list(self._checks)
        results: Dict[str, Dict[str, str]] = {}
        worst = "ok"
        for name, check, for_liveness, for_readiness in checks:
            wanted = for_readiness if readiness else for_liveness
            if not wanted:
                continue
            try:
                result = _normalise(check())
            except Exception as exc:  # noqa: BLE001 - checks must not raise
                result = {"status": "failing",
                          "detail": f"{type(exc).__name__}: {exc}"}
            results[name] = result
            if _STATUS_ORDER[result["status"]] > _STATUS_ORDER[worst]:
                worst = result["status"]
        return {"status": worst, "checks": results}

    def healthz(self) -> Dict[str, object]:
        """Liveness: ``{"ok", "status", "checks"}``.

        ``ok`` is False only for ``failing`` -- a *degraded* fleet (e.g.
        the process executor fell back to threads) keeps serving correct
        answers, and ``status`` carries that distinction for monitors that
        alert on any flip away from ``"ok"``.
        """
        verdict = self._evaluate(readiness=False)
        verdict["ok"] = verdict["status"] != "failing"
        return verdict

    def readyz(self) -> Dict[str, object]:
        """Readiness: ``{"ready", "status", "checks"}`` over readiness
        checks; a load balancer should route traffic only when ``ready``."""
        verdict = self._evaluate(readiness=True)
        verdict["ready"] = verdict["status"] != "failing"
        return verdict


# --------------------------------------------------------------------------- #
# SLO tracking and burn-rate alerts
# --------------------------------------------------------------------------- #

class SLObjective:
    """One rolling-window objective over the query stream.

    Parameters
    ----------
    name:
        Alert/report key, e.g. ``"latency-p-fast"``.
    target:
        Fraction of events that must be *good* (in ``(0, 1)``), e.g.
        ``0.999`` leaves a 0.1% error budget.
    latency_threshold_s:
        An event is bad when its latency exceeds this (``None``: latency
        never disqualifies -- a pure error-rate objective).
    window_s:
        Rolling window the budget is evaluated over.
    burn_rate_alert:
        Fire when the window's burn rate reaches this multiple of budget
        consumption (1.0 = burning exactly the budget).
    kind:
        Restrict the objective to one query kind (``None``: all).
    min_events:
        Do not alert before this many events are in the window (protects
        against a single early failure tripping a 99.9% objective).
    """

    __slots__ = ("name", "target", "latency_threshold_s", "window_s",
                 "burn_rate_alert", "kind", "min_events")

    def __init__(self, name: str, *, target: float = 0.999,
                 latency_threshold_s: Optional[float] = None,
                 window_s: float = 300.0, burn_rate_alert: float = 1.0,
                 kind: Optional[str] = None, min_events: int = 1) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target}")
        if window_s <= 0:
            raise ValueError(f"SLO window must be positive, got {window_s}")
        if burn_rate_alert <= 0:
            raise ValueError(
                f"burn-rate alert threshold must be positive, "
                f"got {burn_rate_alert}")
        if min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {min_events}")
        self.name = name
        self.target = target
        self.latency_threshold_s = latency_threshold_s
        self.window_s = window_s
        self.burn_rate_alert = burn_rate_alert
        self.kind = kind
        self.min_events = min_events


class SLOTracker:
    """Record per-query outcomes; alert on error-budget burn transitions.

    :meth:`record` is on the query hot path, so the bookkeeping is a small
    per-objective deque of ``(timestamp, total, bad)`` aggregates pruned to
    the window -- no per-event storage.  Alerts fire into every sink on
    the firing/resolved *transition*, not on every bad event, carrying a
    JSON-able payload (objective, burn rate, counts, window).  Sinks must
    not raise; failures are swallowed (shedding signals must never take
    serving down with them).
    """

    def __init__(self, objectives: Sequence[SLObjective], *,
                 sinks: Sequence[Callable[[Dict[str, object]], None]] = (),
                 clock: Callable[[], float] = time.monotonic,
                 bucket_s: float = 1.0) -> None:
        self._objectives = list(objectives)
        self._sinks = list(sinks)
        self._clock = clock
        self._bucket_s = bucket_s
        self._lock = threading.Lock()
        #: Per-objective window: deque of [bucket_time, total, bad].
        self._windows: Dict[str, Deque[List[float]]] = {
            objective.name: deque() for objective in self._objectives}
        self._alerting: Dict[str, bool] = {
            objective.name: False for objective in self._objectives}
        self.alerts_fired = 0

    def add_sink(self, sink: Callable[[Dict[str, object]], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def _prune(self, window: Deque[List[float]], objective: SLObjective,
               now: float) -> None:
        horizon = now - objective.window_s
        while window and window[0][0] < horizon:
            window.popleft()

    def record(self, kind: str, seconds: float, *,
               error: bool = False) -> None:
        """Record one served (or failed) query against every objective."""
        now = self._clock()
        alerts: List[Dict[str, object]] = []
        with self._lock:
            for objective in self._objectives:
                if objective.kind is not None and objective.kind != kind:
                    continue
                bad = error or (
                    objective.latency_threshold_s is not None
                    and seconds > objective.latency_threshold_s)
                window = self._windows[objective.name]
                bucket = now - (now % self._bucket_s)
                if window and window[-1][0] == bucket:
                    window[-1][1] += 1
                    window[-1][2] += 1 if bad else 0
                else:
                    window.append([bucket, 1, 1 if bad else 0])
                self._prune(window, objective, now)
                alert = self._evaluate(objective, window)
                if alert is not None:
                    alerts.append(alert)
            sinks = list(self._sinks)
        for alert in alerts:
            for sink in sinks:
                try:
                    sink(alert)
                except Exception:  # noqa: BLE001 - sinks must not raise
                    pass

    def _stats(self, objective: SLObjective,
               window: Deque[List[float]]) -> Tuple[int, int, float]:
        total = sum(int(entry[1]) for entry in window)
        bad = sum(int(entry[2]) for entry in window)
        budget = 1.0 - objective.target
        burn = (bad / total) / budget if total else 0.0
        return total, bad, burn

    def _evaluate(self, objective: SLObjective,
                  window: Deque[List[float]]
                  ) -> Optional[Dict[str, object]]:
        """Transition detection (holding the lock); returns the alert dict
        to fire, or None when the state is unchanged."""
        total, bad, burn = self._stats(objective, window)
        firing = (total >= objective.min_events
                  and burn >= objective.burn_rate_alert)
        if firing == self._alerting[objective.name]:
            return None
        self._alerting[objective.name] = firing
        if firing:
            self.alerts_fired += 1
        return {
            "objective": objective.name,
            "state": "firing" if firing else "resolved",
            "burn_rate": burn,
            "events": total,
            "bad_events": bad,
            "target": objective.target,
            "window_s": objective.window_s,
            "unix_time": time.time(),
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-objective burn state for ``stats()["health"]["slo"]``."""
        now = self._clock()
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for objective in self._objectives:
                window = self._windows[objective.name]
                self._prune(window, objective, now)
                total, bad, burn = self._stats(objective, window)
                out[objective.name] = {
                    "target": objective.target,
                    "window_s": objective.window_s,
                    "events": total,
                    "bad_events": bad,
                    "bad_fraction": bad / total if total else 0.0,
                    "burn_rate": burn,
                    "alerting": self._alerting[objective.name],
                }
        return out

    def alerting(self) -> Dict[str, bool]:
        """Current firing state per objective (for health checks)."""
        with self._lock:
            return dict(self._alerting)


def log_alert_sink(logger: Optional[logging.Logger] = None
                   ) -> Callable[[Dict[str, object]], None]:
    """An alert sink writing one warning per transition to ``logging``."""
    log = logger or logging.getLogger("repro.obs.health")

    def sink(alert: Dict[str, object]) -> None:
        log.warning(
            "SLO %s %s: burn_rate=%.2f over %d events (target %s)",
            alert["objective"], alert["state"], alert["burn_rate"],
            alert["events"], alert["target"])
    return sink


def json_lines_alert_sink(path: str) -> Callable[[Dict[str, object]], None]:
    """An alert sink appending one JSON document per transition to a file
    (same framing as :class:`~repro.obs.recorder.JsonLinesRecorder`)."""
    lock = threading.Lock()

    def sink(alert: Dict[str, object]) -> None:
        line = json.dumps(alert, separators=(",", ":"))
        with lock:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
    return sink

"""Trace analytics: fold recorded span trees into where-did-time-go answers.

A retained trace (see :class:`~repro.obs.recorder.TailSamplingRecorder`)
is a tree of timed spans; what an operator wants from a pile of them is a
flat answer to "which stage is actually costing me".  Two folds provide it:

* :func:`profile` — aggregate per-span-name **self time** (a span's
  duration minus its children's, the time spent *in* that stage rather
  than below it) across any number of traces.  Self time is the right
  attribution: total time double-counts every ancestor of a hot leaf.
* :func:`critical_path` — the chain of largest-duration children from a
  single trace's root: the sequence of spans that bounded the request's
  latency (speeding up anything off this path cannot help).

Both operate on plain :class:`~repro.obs.span.Span` trees, so spans grafted
from other processes (the procpool worker envelope path) are analysed
exactly like local ones — after grafting they *are* ordinary children.

The engine exposes :func:`profile` over the wire as the ``trace_profile``
op; :func:`render_profile` is the human-readable table the examples print.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.obs.span import Span, Trace

__all__ = ["critical_path", "profile", "render_profile", "span_self_seconds"]


def span_self_seconds(span_: Span) -> float:
    """Seconds spent in ``span_`` itself, excluding its children.

    Clamped at zero: children running concurrently (threaded shard fan-out)
    can sum past their parent's wall clock, and that overshoot is
    parallelism, not negative work.
    """
    duration = span_.duration_s or 0.0
    children = sum(child.duration_s or 0.0 for child in span_.children)
    return max(0.0, duration - children)


def profile(traces: Iterable[Trace]) -> Dict[str, Dict[str, float]]:
    """Aggregate per-stage timing over ``traces``, keyed by span name.

    Each entry holds ``count`` (spans seen), ``total_seconds`` (summed
    durations — note ancestors include descendants here), ``self_seconds``
    (summed self time — these *do* add up to total wall clock across names,
    up to parallel overlap), and ``max_seconds`` (worst single span).
    """
    stages: Dict[str, Dict[str, float]] = {}
    for trace in traces:
        for span_ in trace.root.iter_spans():
            entry = stages.get(span_.name)
            if entry is None:
                entry = stages[span_.name] = {
                    "count": 0, "total_seconds": 0.0,
                    "self_seconds": 0.0, "max_seconds": 0.0}
            duration = span_.duration_s or 0.0
            entry["count"] += 1
            entry["total_seconds"] += duration
            entry["self_seconds"] += span_self_seconds(span_)
            entry["max_seconds"] = max(entry["max_seconds"], duration)
    return stages


def critical_path(trace: Trace) -> List[Dict[str, Any]]:
    """The root-to-leaf chain of largest-duration children.

    Returns one record per hop — name, duration, self seconds, and the
    fraction of the root's wall clock the hop covers — ordered root first.
    This is the latency-bounding sequence: only work on this path can have
    delayed the response.
    """
    path: List[Dict[str, Any]] = []
    root_duration = trace.root.duration_s or 0.0
    span_ = trace.root
    while span_ is not None:
        duration = span_.duration_s or 0.0
        path.append({
            "name": span_.name,
            "duration_s": duration,
            "self_seconds": span_self_seconds(span_),
            "fraction_of_root": (duration / root_duration
                                 if root_duration > 0 else 0.0),
        })
        span_ = max(span_.children, default=None,
                    key=lambda child: child.duration_s or 0.0)
    return path


def render_profile(stages: Dict[str, Dict[str, float]]) -> str:
    """A fixed-width table of a :func:`profile` result, hottest self first."""
    header = (f"{'stage':<36} {'count':>6} {'self ms':>10} "
              f"{'total ms':>10} {'max ms':>10}")
    lines = [header, "-" * len(header)]
    ordered = sorted(stages.items(),
                     key=lambda item: item[1]["self_seconds"], reverse=True)
    for name, entry in ordered:
        lines.append(
            f"{name:<36} {int(entry['count']):>6} "
            f"{entry['self_seconds'] * 1e3:>10.3f} "
            f"{entry['total_seconds'] * 1e3:>10.3f} "
            f"{entry['max_seconds'] * 1e3:>10.3f}")
    return "\n".join(lines)

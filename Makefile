# Developer entry points for the MaxRS reproduction.
#
#   make test           - the tier-1 verification suite (tests + fast benchmarks)
#   make bench-smoke    - the benchmark suite at its tiny "smoke" preset
#   make bench          - the benchmark suite at its standard preset
#   make bench-backends - sweep-backend A/B comparison (smoke preset)
#   make bench-persist  - warm-start vs cold re-ingest comparison (fast preset)
#   make bench-shards   - sharded vs unsharded grid index (fast preset)
#   make bench-pyramid  - grid pyramid + bounded-error descent vs flat (fast preset)
#   make bench-async    - concurrent async clients vs sequential sync (fast preset)
#   make bench-obs      - fleet-telemetry overhead guard (fast preset)
#   make bench-introspect - query-introspection overhead guard (fast preset)
#   make bench-json     - refresh the BENCH_*.json perf-trajectory artefacts
#   make bench-gate     - fail if fresh bench numbers regress vs checked-in
#   make trace-smoke    - observability suite + the traced-query walkthrough
#   make examples       - run every example script end-to-end
#   make verify         - tier-1 tests + bench-gate + examples smoke run
#
# All targets run from the repository checkout without installation: the
# PYTHONPATH export makes the src/ layout importable, matching conftest.py.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench bench-backends bench-persist bench-shards \
	bench-pyramid bench-async bench-obs bench-introspect bench-json \
	bench-gate trace-smoke examples verify

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	REPRO_BENCH_PRESET=smoke $(PYTHON) -m pytest benchmarks -q

# Quick A/B of the pluggable sweep backends (pure Python vs numpy) on the
# refined-cold-query workload; full scale runs as part of `make bench`.
bench-backends:
	REPRO_BENCH_PRESET=smoke $(PYTHON) -m pytest \
		benchmarks/test_service_throughput.py -q -k backend

# Warm-start (snapshot restore) vs cold re-ingest for the persistent engine;
# the >= 5x acceptance bound is asserted at (near-)paper scale, e.g.
# REPRO_BENCH_PRESET=paper make bench-persist.
bench-persist:
	$(PYTHON) -m pytest benchmarks/test_service_coldstart.py -q

# Sharded (4 shards on the best available executor, the multiprocess data
# plane where shared memory works) vs unsharded grid index on registration and
# refined cold queries; the >= 2x acceptance bound is asserted at
# (near-)paper scale on hosts with >= 4 cores, e.g.
# REPRO_BENCH_PRESET=paper make bench-shards.
bench-shards:
	$(PYTHON) -m pytest benchmarks/test_service_shards.py -q

# Grid pyramid (bounded-error coarse-to-fine descent, error_bound=0.05) vs
# the flat single-level index on large cold queries; the >= 2x acceptance
# bound, the strictly-fewer-swept-points property and the <= 25% roll-up
# build overhead are asserted at (near-)paper scale, e.g.
# REPRO_BENCH_PRESET=paper make bench-pyramid.
bench-pyramid:
	$(PYTHON) -m pytest benchmarks/test_service_pyramid.py -q

# Concurrent clients through the asyncio front-end (request coalescing +
# bounded admission) vs the same workload as naive sequential sync queries;
# the >= 2x acceptance bound is asserted at (near-)paper scale on hosts with
# >= 4 cores, e.g. REPRO_BENCH_PRESET=paper make bench-async.
bench-async:
	$(PYTHON) -m pytest benchmarks/test_service_async.py -q

# Fleet-telemetry overhead guard: the engine with the background resource
# sampler + SLO tracking enabled vs the default (sampler idle) engine on the
# refined cold query; the <= 3% acceptance bound is asserted at (near-)paper
# scale, e.g. REPRO_BENCH_PRESET=paper make bench-obs.
bench-obs:
	$(PYTHON) -m pytest benchmarks/test_obs_agg_overhead.py -q

# Query-introspection overhead guard: the engine with the cost ledger,
# per-client accounting and tail-sampling tracer all enabled vs the default
# engine on the refined cold query; the <= 3% acceptance bound is asserted
# at (near-)paper scale, e.g. REPRO_BENCH_PRESET=paper make bench-introspect.
bench-introspect:
	$(PYTHON) -m pytest benchmarks/test_obs_introspect_overhead.py -q

bench:
	REPRO_BENCH_PRESET=bench $(PYTHON) -m pytest benchmarks -q

# Refresh every machine-readable BENCH_<name>.json perf-trajectory artefact
# (host fingerprint, config, p50/p95/p99, speedup vs baseline) by running
# the serving benchmarks that emit them, at the default preset.
bench-json:
	$(PYTHON) -m pytest -q \
		benchmarks/test_service_throughput.py \
		benchmarks/test_service_coldstart.py \
		benchmarks/test_service_shards.py \
		benchmarks/test_service_pyramid.py \
		benchmarks/test_service_async.py \
		benchmarks/test_obs_overhead.py \
		benchmarks/test_obs_agg_overhead.py \
		benchmarks/test_obs_introspect_overhead.py

# Perf regression gate: re-run the BENCH-emitting benchmarks, compare the
# fresh p50 latency / speedup numbers against the checked-in BENCH_*.json
# trajectory, and fail when a tracked metric slips beyond tolerance
# (REPRO_BENCH_TOLERANCE, default 0.30).  Entries recorded on a different
# host fingerprint are skipped with a warning; the checked-in files are
# restored afterwards so the gate never dirties the working tree.
bench-gate:
	$(PYTHON) scripts/check_bench_regression.py

# The observability smoke: obs unit + propagation + introspection tests,
# the disabled-tracing overhead guard, and the traced-query example --
# which exercises explain(), the cost ledger and trace_profile() end-to-end.
trace-smoke:
	$(PYTHON) -m pytest -q tests/test_obs_span.py tests/test_obs_tail.py \
		tests/test_obs_propagation.py tests/test_introspection.py \
		benchmarks/test_obs_overhead.py
	$(PYTHON) examples/traced_query.py

examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) "$$script"; \
	done

# The full local gate: tier-1 tests, the perf-regression gate over the
# checked-in BENCH_*.json trajectory, and an examples smoke run of the
# service/observability walkthroughs.
verify: test bench-gate
	$(PYTHON) examples/query_service.py
	$(PYTHON) examples/traced_query.py
	$(PYTHON) examples/health_monitor.py

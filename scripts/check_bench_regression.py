#!/usr/bin/env python
"""Benchmark regression gate for the ``BENCH_*.json`` perf artefacts.

The serving benchmarks (``make bench-json``) emit machine-readable
``benchmarks/BENCH_<name>.json`` entries -- host fingerprint, workload,
config, wall-clock, latency percentiles and speedup vs baseline.  Those
files are checked in as the repository's perf trajectory.  This script
closes the loop: it re-runs the emitting benchmarks, compares the fresh
numbers against the checked-in ones, and fails when a tracked metric has
slipped beyond tolerance.

Tracked metrics (compared only when present in the checked-in entry):

``speedup``
    Higher is better.  Fails when ``fresh < baseline * (1 - tolerance)``,
    except that once both numbers sit above ``SPEEDUP_SATURATION`` the
    metric counts as saturated and passes: a warm-start that is 77x
    instead of 168x faster than re-ingest is run-to-run noise in a
    microsecond-scale denominator, while dropping below the saturation
    floor is a real regression and still fails.
``latency.<kind>.p50_seconds``
    Lower is better, one metric per query kind recorded in the entry's
    latency block.  Fails when ``fresh > baseline * (1 + tolerance)`` *and*
    the fresh value exceeds ``LATENCY_FLOOR_SECONDS``: below the floor the
    log-bucketed histograms quantise microsecond cache hits into adjacent
    buckets, so the ratio is noise by construction.

Entries whose host fingerprint (machine / schedulable cores) or preset does
not match the current run are *skipped with a warning* rather than failed:
a checked-in number from an 8-core CI box says nothing about a 1-core
laptop.  Pass ``--strict-host`` to compare them anyway (useful on the
machine that produced the baselines).

The default tolerance is 0.30 (30%), wide enough to absorb normal
wall-clock noise at the fast preset; override with ``--tolerance`` or the
``REPRO_BENCH_TOLERANCE`` environment variable.  After the comparison the
checked-in files are restored so the gate never dirties the working tree;
pass ``--keep-fresh`` to keep the re-run's files instead (e.g. when
intentionally re-baselining).

Usage::

    make bench-gate                       # run + compare + restore
    python scripts/check_bench_regression.py --tolerance 0.5
    python scripts/check_bench_regression.py --no-run --fresh-dir /tmp/out

Exit status is 0 when every comparable metric is within tolerance and 1
when anything regressed or a checked-in benchmark no longer produces its
artefact.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Default fractional tolerance before a tracked metric counts as regressed.
DEFAULT_TOLERANCE = 0.30

#: Directions of goodness for tracked metrics.
HIGHER = "higher"
LOWER = "lower"

#: Speedups at or above this are "order-of-magnitude" wins whose exact
#: ratio is noise-dominated; two saturated numbers compare as equal.
SPEEDUP_SATURATION = 10.0

#: Latencies below this are timer/bucket quantisation, not signal: the
#: engine's log-bucketed histograms quantise a ~5 us cache hit into one of
#: two adjacent buckets (3.5 us vs 7 us -- a 2x "regression" from noise
#: alone), so a p50 comparison only fails once the fresh value also exceeds
#: this absolute floor.  A real hot-path regression (a cache hit turning
#: into a solve) clears it by orders of magnitude.
LATENCY_FLOOR_SECONDS = 100e-6

#: Host-fingerprint keys that must match for cross-run numbers to be
#: comparable at all.  Kernel build and python patch level are deliberately
#: excluded -- they churn without changing what the benchmarks measure.
HOST_KEYS = ("machine", "cpu_count")


def load_entries(directory: Path) -> dict[str, dict]:
    """Load every ``BENCH_<name>.json`` in *directory*, keyed by name."""
    entries: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with path.open("r", encoding="utf-8") as fh:
            entry = json.load(fh)
        name = entry.get("name") or path.stem[len("BENCH_"):]
        entries[name] = entry
    return entries


def bench_modules(directory: Path) -> list[Path]:
    """Benchmark modules that emit BENCH json (self-maintaining discovery)."""
    modules = []
    for path in sorted(directory.glob("test_*.py")):
        if re.search(r"\bwrite_bench_json\s*\(", path.read_text(encoding="utf-8")):
            modules.append(path)
    return modules


def emitted_names(module: Path) -> list[str]:
    """BENCH names a module emits: its ``write_bench_json("<name>", ...)``
    string-literal first arguments (dynamic names are invisible here and
    simply cannot be selected with ``--only``)."""
    text = module.read_text(encoding="utf-8")
    return re.findall(r"""write_bench_json\s*\(\s*["']([^"']+)["']""", text)


def modules_for(directory: Path, names: set[str]) -> list[Path]:
    """The emitting modules behind the selected BENCH *names*."""
    return [module for module in bench_modules(directory)
            if names & set(emitted_names(module))]


def lookup(entry: dict, dotted: str):
    """Resolve a dotted metric path (``latency.p50_seconds``) or None."""
    node = entry
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def tracked_metrics(entry: dict) -> list[tuple[str, str]]:
    """The ``(dotted_path, direction)`` metrics an entry is gated on.

    ``speedup`` when present, plus one p50 metric per query kind in the
    entry's latency block (``write_bench_json`` nests percentiles under the
    kind, e.g. ``latency.maxrs.p50_seconds``; a flat percentile dict is
    accepted too).
    """
    metrics: list[tuple[str, str]] = []
    if isinstance(entry.get("speedup"), (int, float)):
        metrics.append(("speedup", HIGHER))
    latency = entry.get("latency")
    if isinstance(latency, dict):
        if isinstance(latency.get("p50_seconds"), (int, float)):
            metrics.append(("latency.p50_seconds", LOWER))
        for kind in sorted(latency):
            node = latency[kind]
            if (isinstance(node, dict)
                    and isinstance(node.get("p50_seconds"), (int, float))):
                metrics.append((f"latency.{kind}.p50_seconds", LOWER))
    return metrics


def host_mismatches(baseline: dict, fresh: dict) -> list[str]:
    """Host-fingerprint keys on which the two entries disagree."""
    base_host = baseline.get("host") or {}
    fresh_host = fresh.get("host") or {}
    return [key for key in HOST_KEYS if base_host.get(key) != fresh_host.get(key)]


def compare_entries(
    baselines: dict[str, dict],
    fresh: dict[str, dict],
    *,
    tolerance: float,
    strict_host: bool = False,
) -> tuple[list[dict], list[str]]:
    """Compare fresh entries against baselines.

    Returns ``(rows, failures)``: one row per (name, metric) verdict for the
    report, and the list of human-readable failure reasons (empty == gate
    passes).
    """
    rows: list[dict] = []
    failures: list[str] = []

    for name, base in sorted(baselines.items()):
        new = fresh.get(name)
        if new is None:
            failures.append(
                f"{name}: checked-in artefact has no fresh counterpart "
                "(benchmark no longer emits it?)"
            )
            rows.append({"name": name, "metric": "-", "verdict": "MISSING"})
            continue

        if base.get("preset") != new.get("preset"):
            rows.append({
                "name": name, "metric": "-", "verdict": "SKIP",
                "note": (f"preset mismatch ({base.get('preset')} vs "
                         f"{new.get('preset')})"),
            })
            continue

        mismatched = host_mismatches(base, new)
        if mismatched and not strict_host:
            rows.append({
                "name": name, "metric": "-", "verdict": "SKIP",
                "note": "host mismatch on " + ", ".join(mismatched),
            })
            continue

        compared = 0
        for metric, direction in tracked_metrics(base):
            base_value = lookup(base, metric)
            fresh_value = lookup(new, metric)
            if fresh_value is None:
                failures.append(f"{name}: fresh entry lost tracked metric {metric}")
                rows.append({"name": name, "metric": metric, "verdict": "MISSING"})
                continue
            compared += 1
            if direction == HIGHER:
                ok = fresh_value >= base_value * (1.0 - tolerance)
                if (not ok and metric == "speedup"
                        and base_value >= SPEEDUP_SATURATION
                        and fresh_value >= SPEEDUP_SATURATION):
                    ok = True
            else:
                ok = fresh_value <= max(base_value * (1.0 + tolerance),
                                        LATENCY_FLOOR_SECONDS)
            delta = (fresh_value - base_value) / base_value if base_value else 0.0
            rows.append({
                "name": name, "metric": metric,
                "baseline": base_value, "fresh": fresh_value, "delta": delta,
                "verdict": "ok" if ok else "REGRESSED",
            })
            if not ok:
                failures.append(
                    f"{name}: {metric} regressed beyond {tolerance:.0%} "
                    f"tolerance ({base_value:.6g} -> {fresh_value:.6g}, "
                    f"{delta:+.1%})"
                )
        if compared == 0 and not any(r["name"] == name and r["verdict"] == "MISSING"
                                     for r in rows):
            rows.append({"name": name, "metric": "-", "verdict": "SKIP",
                         "note": "no tracked metrics in baseline"})

    for name in sorted(set(fresh) - set(baselines)):
        rows.append({"name": name, "metric": "-", "verdict": "NEW",
                     "note": "no checked-in baseline (commit it to track)"})
    return rows, failures


def render_report(rows: list[dict], failures: list[str], tolerance: float) -> str:
    lines = [f"bench-gate: tolerance {tolerance:.0%}"]
    for row in rows:
        if "baseline" in row:
            lines.append(
                "  {name:<22s} {metric:<20s} {baseline:>12.6g} -> "
                "{fresh:>12.6g} ({delta:+7.1%})  {verdict}".format(**row)
            )
        else:
            note = row.get("note", "")
            lines.append(
                f"  {row['name']:<22s} {row['metric']:<20s} "
                f"{row['verdict']}{'  (' + note + ')' if note else ''}"
            )
    if failures:
        lines.append("FAIL: " + failures[0])
        lines.extend("      " + reason for reason in failures[1:])
    else:
        lines.append("PASS: no tracked metric regressed")
    return "\n".join(lines)


def run_benchmarks(bench_dir: Path, only: set[str] | None = None) -> int:
    """Re-run the BENCH-emitting benchmark modules; returns pytest's rc.

    ``only`` restricts the run to the modules emitting those BENCH names.
    """
    modules = modules_for(bench_dir, only) if only else bench_modules(bench_dir)
    if not modules:
        print("bench-gate: no benchmark modules emit write_bench_json", file=sys.stderr)
        return 1
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "pytest", "-q", *[str(m) for m in modules]]
    print("bench-gate: running", " ".join(cmd))
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks-dir", type=Path,
                        default=REPO_ROOT / "benchmarks",
                        help="directory holding the checked-in BENCH_*.json")
    parser.add_argument("--fresh-dir", type=Path, default=None,
                        help="directory holding freshly produced BENCH_*.json "
                             "(required with --no-run)")
    parser.add_argument("--no-run", action="store_true",
                        help="skip re-running benchmarks; compare --fresh-dir "
                             "against the checked-in entries")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                                     DEFAULT_TOLERANCE)),
                        help="fractional slack before a metric counts as "
                             f"regressed (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--strict-host", action="store_true",
                        help="compare entries even when the host fingerprint "
                             "differs from the checked-in one")
    parser.add_argument("--keep-fresh", action="store_true",
                        help="leave the re-run's BENCH files in place instead "
                             "of restoring the checked-in ones")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="gate only this BENCH name (repeatable); other "
                             "checked-in artefacts are neither re-run nor "
                             "compared")
    parser.add_argument("--list", action="store_true", dest="list_benchmarks",
                        help="list the checked-in BENCH names and their "
                             "emitting modules, then exit")
    args = parser.parse_args(argv)

    if args.no_run and args.fresh_dir is None:
        parser.error("--no-run requires --fresh-dir")

    bench_dir: Path = args.benchmarks_dir
    baselines = load_entries(bench_dir)

    if args.list_benchmarks:
        by_name: dict[str, Path] = {}
        for module in bench_modules(bench_dir):
            for name in emitted_names(module):
                by_name.setdefault(name, module)
        for name in sorted(set(baselines) | set(by_name)):
            module = by_name.get(name)
            status = "" if name in baselines else "  (no checked-in baseline)"
            print(f"{name:<22s} {module.name if module else '<unknown module>'}"
                  f"{status}")
        return 0

    if not baselines:
        print(f"bench-gate: no BENCH_*.json under {bench_dir}; nothing to gate")
        return 0

    only: set[str] | None = set(args.only) if args.only else None
    if only:
        unknown = only - set(baselines)
        if unknown:
            parser.error("unknown BENCH name(s): " + ", ".join(sorted(unknown))
                         + " (see --list)")
        baselines = {name: entry for name, entry in baselines.items()
                     if name in only}

    if args.no_run:
        fresh = load_entries(args.fresh_dir)
    else:
        # Snapshot the checked-in artefacts: the benchmarks overwrite them
        # in place, and the gate must not dirty the working tree.
        with tempfile.TemporaryDirectory(prefix="bench-gate-") as tmp:
            snapshot = Path(tmp)
            for path in bench_dir.glob("BENCH_*.json"):
                shutil.copy2(path, snapshot / path.name)
            rc = run_benchmarks(bench_dir, only)
            fresh = load_entries(bench_dir)
            if not args.keep_fresh:
                for path in snapshot.glob("BENCH_*.json"):
                    shutil.copy2(path, bench_dir / path.name)
            if rc != 0:
                print("bench-gate: benchmark run failed", file=sys.stderr)
                return 1

    if only:
        fresh = {name: entry for name, entry in fresh.items() if name in only}

    rows, failures = compare_entries(
        baselines, fresh, tolerance=args.tolerance, strict_host=args.strict_host,
    )
    print(render_report(rows, failures, args.tolerance))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Concurrent-client throughput of the asyncio serving front-end.

The serving question PR 5 answers: when many clients hit one resident engine
*concurrently*, does the async front-end (:mod:`repro.aio`) -- request
coalescing plus bounded admission over the engine's thread pool -- beat the
same workload issued as naive sequential ``query()`` calls?

Two mixes bound the answer:

* **hot-key** -- 64 clients drawing from a few popular sizes, many of them
  in flight at the same moment.  Coalescing collapses the stampede: one
  solve per distinct size, everyone else awaits the shared future.
* **uniform-key** -- 64 clients each asking something different.  Nothing to
  coalesce; the win (if any) comes from solving distinct queries in parallel
  across cores under ``max_inflight``.

Answers must stay **bit-identical** to the sequential sync engine's on every
query -- that part is asserted unconditionally, at every scale, on every
host.  The >= 2x acceptance bound is asserted at (near-)paper scale on hosts
with >= 4 cores; single-core hosts record their (roughly parity) ratio into
the artefact log instead, as the shard benchmark does.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro.aio import AsyncMaxRSEngine
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the serving benchmark dataset.
PAPER_CARDINALITY = 50_000

#: The concurrent workload: how many clients, how many queries each.
CLIENTS = 64
QUERIES_PER_CLIENT = 4

_DOMAIN = 1_000_000.0

#: Multi-core acceptance bound (single-core hosts record parity instead).
SPEEDUP_BOUND = 2.0


def _hotspot_dataset(cardinality: int, seed: int = 7) -> list[WeightedPoint]:
    """Uniform background (90%) plus five dense hot spots (10%)."""
    rng = np.random.default_rng(seed)
    background = int(cardinality * 0.9)
    hot = cardinality - background
    xs = list(rng.uniform(0.0, _DOMAIN, background))
    ys = list(rng.uniform(0.0, _DOMAIN, background))
    centres = rng.uniform(0.2 * _DOMAIN, 0.8 * _DOMAIN, size=(5, 2))
    sigma = 0.005 * _DOMAIN
    for index in range(hot):
        cx, cy = centres[index % 5]
        xs.append(float(np.clip(rng.normal(cx, sigma), 0.0, _DOMAIN)))
        ys.append(float(np.clip(rng.normal(cy, sigma), 0.0, _DOMAIN)))
    weights = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(xs, ys, weights)]


def _sizes(count: int, seed: int) -> list[tuple[float, float]]:
    rng = np.random.default_rng(seed)
    return [(round(float(rng.uniform(0.002, 0.05) * _DOMAIN), 1),
             round(float(rng.uniform(0.002, 0.05) * _DOMAIN), 1))
            for _ in range(count)]


def _hot_key_workload(seed: int = 11) -> list[list[QuerySpec]]:
    """Per-client query streams drawn from 8 popular sizes (hot-key mix)."""
    sizes = _sizes(8, seed=3)
    rng = np.random.default_rng(seed)
    clients = []
    for _ in range(CLIENTS):
        # Zipf-flavoured popularity: half the traffic on the two hottest keys.
        picks = rng.choice(len(sizes), size=QUERIES_PER_CLIENT,
                           p=np.array([0.3, 0.2, 0.1, 0.1, 0.1, 0.1, 0.05,
                                       0.05]))
        clients.append([QuerySpec.maxrs(*sizes[int(p)]) for p in picks])
    return clients


#: The uniform mix issues fewer, smaller queries per client: every one is a
#: distinct cold solve (no cache, no coalescing), so the per-query cost --
#: not the query count -- is what exercises the admission path.
UNIFORM_QUERIES_PER_CLIENT = 2


def _uniform_key_workload(seed: int = 29) -> list[list[QuerySpec]]:
    """Per-client streams over distinct sizes (nothing to coalesce)."""
    rng = np.random.default_rng(seed)
    sizes = [(round(float(rng.uniform(0.002, 0.015) * _DOMAIN), 1),
              round(float(rng.uniform(0.002, 0.015) * _DOMAIN), 1))
             for _ in range(CLIENTS * UNIFORM_QUERIES_PER_CLIENT)]
    return [[QuerySpec.maxrs(*sizes[client * UNIFORM_QUERIES_PER_CLIENT + i])
             for i in range(UNIFORM_QUERIES_PER_CLIENT)]
            for client in range(CLIENTS)]


def _sequential_baseline(objects, clients):
    """Naive serving: every query issued back to back on one sync engine."""
    engine = MaxRSEngine()
    dataset = engine.register_dataset(objects)
    start = time.perf_counter()
    results = [[engine.query(dataset, spec) for spec in stream]
               for stream in clients]
    seconds = time.perf_counter() - start
    engine.close()
    return results, seconds


def _concurrent_async(objects, clients):
    """The same queries from concurrent client coroutines via repro.aio."""

    async def run():
        async with AsyncMaxRSEngine(max_inflight=max(4, os.cpu_count() or 1),
                                    overflow="wait") as front:
            dataset = await front.register_dataset(objects)

            async def one_client(stream):
                return [await front.query(dataset, spec) for spec in stream]

            start = time.perf_counter()
            results = await asyncio.gather(
                *(one_client(stream) for stream in clients))
            seconds = time.perf_counter() - start
            return results, seconds, front.stats()["aio"]

    return asyncio.run(run())


def _assert_bit_identical(async_results, sync_results):
    for async_stream, sync_stream in zip(async_results, sync_results):
        for got, want in zip(async_stream, sync_stream):
            assert got.total_weight == want.total_weight
            assert got.region == want.region
            assert got.location == want.location


def _run_mix(mix_name, clients, objects, report, cardinality):
    sync_results, sync_seconds = _sequential_baseline(objects, clients)
    async_results, async_seconds, aio = _concurrent_async(objects, clients)
    _assert_bit_identical(async_results, sync_results)

    total = sum(len(stream) for stream in clients)
    speedup = sync_seconds / async_seconds
    cores = os.cpu_count() or 1
    latency = aio["latency"]["maxrs"]
    report(
        f"[service-async] {mix_name} mix "
        f"(|O|={cardinality}, {len(clients)} concurrent clients x "
        f"{len(clients[0])} queries, {cores} cores):\n"
        f"  sequential sync query() x{total}:   {sync_seconds:8.3f} s "
        f"({total / sync_seconds:10.1f} queries/s)\n"
        f"  async concurrent clients:           {async_seconds:8.3f} s "
        f"({total / async_seconds:10.1f} queries/s)\n"
        f"  speedup: {speedup:5.2f}x   admitted: {aio['admitted']}   "
        f"coalesce hits: {aio['coalesce_hits']}   "
        f"rejected: {aio['rejected']}\n"
        f"  latency p50/p95/p99: {latency['p50_seconds'] * 1e3:.2f} / "
        f"{latency['p95_seconds'] * 1e3:.2f} / "
        f"{latency['p99_seconds'] * 1e3:.2f} ms\n"
        f"  answers: bit-identical to the sequential sync engine on all "
        f"{total} queries"
    )
    write_bench_json(
        f"async_{mix_name.replace('-', '_')}",
        workload={"cardinality": cardinality, "clients": len(clients),
                  "queries": total, "mix": mix_name},
        config={"max_inflight": max(4, cores), "overflow": "wait",
                "cores": cores},
        seconds=async_seconds, baseline_seconds=sync_seconds,
        speedup=speedup,
        # Latency rides in extra (reported, not gated): under this
        # deliberately-overloaded workload (64 clients, max_inflight 4,
        # overflow="wait") the per-query p50 is queue-wait -- where a
        # coalescing follower lands inside the leader's solve window --
        # and swings ~30x run-to-run on identical code.  `speedup` stays
        # the tracked metric for this benchmark.
        extra={"admitted": aio["admitted"],
               "coalesce_hits": aio["coalesce_hits"],
               "rejected": aio["rejected"],
               "latency": aio["latency"]})
    # Acceptance: >= 2x at (near-)paper scale with real parallelism to
    # exploit.  Single-core hosts (or tiny presets, where fixed event-loop
    # overhead dominates microsecond solves) assert bit-identity above and
    # record their measured ratio for the log instead.
    if cores >= 4 and cardinality >= 20_000:
        assert speedup >= SPEEDUP_BOUND, (mix_name, speedup)
    return speedup, aio


def test_async_hot_key_throughput(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _hotspot_dataset(cardinality)
    clients = _hot_key_workload()
    speedup, aio = _run_mix("hot-key", clients, objects, report, cardinality)
    # The stampede must actually coalesce: 256 queries over 8 distinct specs
    # from 64 concurrent clients cannot all be admitted individually.
    assert aio["coalesce_hits"] > 0
    assert aio["admitted"] + aio["coalesce_hits"] == CLIENTS * QUERIES_PER_CLIENT


def test_async_uniform_key_throughput(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _hotspot_dataset(cardinality, seed=13)
    clients = _uniform_key_workload()
    _run_mix("uniform-key", clients, objects, report, cardinality)

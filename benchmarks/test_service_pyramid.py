"""Grid pyramid + bounded-error fast path vs the flat grid index.

The pyramid acceptance workload at (near-)paper scale, 200k points, on a
uniform and a hotspot-skewed dataset: build the hierarchical index and serve
large cold queries, once exactly through the flat single-level baseline
(``pyramid_levels=1``) and once through the pyramid's bounded-error descent
(``error_bound=0.05``).  Three properties are checked:

* **Exactness is untouched** -- without ``error_bound`` the pyramid engine's
  refined answers are bit-identical to the flat engine's (the pyramid is a
  pure pruning accelerator; exact queries take the base-level path verbatim);
* **The certificate holds** -- every degraded answer's ``result.gap`` bounds
  the true optimum: ``exact <= approx * (1 + gap)`` with ``gap <= 0.05``,
  while the bounded path sweeps strictly fewer points than the exact path;
* **The fast path is fast** -- on the 200k uniform dataset the bounded
  descent answers the large cold queries >= 2x faster than the flat exact
  refined sweep (asserted at (near-)paper scale; smaller presets record the
  measured numbers but only assert correctness).

The entry also records the pyramid depth, the per-level stop histogram of
the descent (which coarse level certified each answer) and the flat-vs-
pyramid registration overhead (the vectorised roll-up must stay <= 25% of
the flat build), so ``BENCH_pyramid.json`` numbers stay interpretable.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # index construction is numpy-backed

from _bench_utils import write_bench_json
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec
from repro.service.grid_index import GridIndex

#: Paper-scale cardinality of the pyramid benchmark datasets.
PAPER_CARDINALITY = 200_000

#: The acceptance gap: descent stops at the first level certifying 5%.
ERROR_BOUND = 0.05

_DOMAIN = 1_000_000.0

#: Large cold queries: the regime where the exact path must sweep most of
#: the dataset but a coarse pyramid level already certifies a 5% gap (the
#: level bound's slop is ~10 cells/side relative, so sides >= ~0.55 of the
#: domain certify comfortably at 200k points).
_FAST_SIZES = [(600_000.0, 600_000.0), (550_000.0, 650_000.0),
               (650_000.0, 550_000.0), (620_000.0, 580_000.0)]

#: Small refined queries for the bit-identity check (exact on both engines).
_EXACT_SIZES = [(20_000.0, 20_000.0), (12_000.0, 24_000.0),
                (8_000.0, 8_000.0)]


def _uniform_columns(cardinality: int, seed: int = 11):
    """Uniform points over the domain with small integer weights."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, _DOMAIN, cardinality)
    ys = rng.uniform(0.0, _DOMAIN, cardinality)
    ws = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return xs, ys, ws


def _hotspot_columns(cardinality: int, seed: int = 37):
    """Uniform background (90%) plus five dense hot spots (10%), as columns."""
    rng = np.random.default_rng(seed)
    background = int(cardinality * 0.9)
    hot = cardinality - background
    centres = rng.uniform(0.2 * _DOMAIN, 0.8 * _DOMAIN, size=(5, 2))
    sigma = 0.005 * _DOMAIN
    picks = centres[np.arange(hot) % 5]
    xs = np.concatenate([
        rng.uniform(0.0, _DOMAIN, background),
        np.clip(rng.normal(picks[:, 0], sigma), 0.0, _DOMAIN)])
    ys = np.concatenate([
        rng.uniform(0.0, _DOMAIN, background),
        np.clip(rng.normal(picks[:, 1], sigma), 0.0, _DOMAIN)])
    ws = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return xs, ys, ws


def _swept(engine: MaxRSEngine) -> int:
    return engine.metrics.snapshot()["counters"].get("swept_points", 0)


def test_pyramid_vs_flat(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    datasets = {"uniform": _uniform_columns(cardinality),
                "hotspot": _hotspot_columns(cardinality)}
    fast_specs = [QuerySpec.maxrs(w, h) for w, h in _FAST_SIZES]
    bounded_specs = [QuerySpec.maxrs(w, h, error_bound=ERROR_BOUND)
                     for w, h in _FAST_SIZES]
    exact_specs = [QuerySpec.maxrs(w, h) for w, h in _EXACT_SIZES]

    # Registration overhead: the vectorised roll-up on top of the flat build
    # (min-of-5; the roll-up is a handful of reshape-sums over the base
    # aggregates, so it must stay a small fraction of the binning itself).
    reg_n = min(cardinality, 50_000)
    rx, ry, rw = (col[:reg_n] for col in datasets["uniform"])
    flat_build = min(_timed(lambda: GridIndex(rx, ry, rw, pyramid_levels=1))
                     for _ in range(5))
    pyramid_build = min(_timed(lambda: GridIndex(rx, ry, rw))
                        for _ in range(5))
    build_overhead = pyramid_build / flat_build if flat_build > 0 \
        else float("inf")

    per_dataset = {}
    for name, (xs, ys, ws) in datasets.items():
        objects = [WeightedPoint(float(x), float(y), float(w))
                   for x, y, w in zip(xs, ys, ws)]
        with MaxRSEngine(pyramid_levels=1) as flat, MaxRSEngine() as pyramid:
            flat_handle = flat.register_dataset(objects, name=name)
            pyr_handle = pyramid.register_dataset(objects, name=name)
            grid_stats = pyramid.stats()["grids"][name]
            assert grid_stats["pyramid_depth"] >= 2, grid_stats

            # Exactness: without error_bound the pyramid changes nothing.
            for spec in exact_specs:
                flat_r = flat.query(flat_handle, spec)
                pyr_r = pyramid.query(pyr_handle, spec)
                assert pyr_r.total_weight == flat_r.total_weight, spec
                assert pyr_r.region == flat_r.region, spec
                assert pyr_r.gap is None and flat_r.gap is None

            # Large cold queries: flat exact refined sweep ...
            swept_before = _swept(flat)
            start = time.perf_counter()
            exact_results = [flat.query(flat_handle, spec)
                             for spec in fast_specs]
            flat_seconds = time.perf_counter() - start
            exact_swept = _swept(flat) - swept_before

            # ... vs the pyramid's bounded-error descent.
            swept_before = _swept(pyramid)
            start = time.perf_counter()
            bounded_results = [pyramid.query(pyr_handle, spec)
                               for spec in bounded_specs]
            pyramid_seconds = time.perf_counter() - start
            bounded_swept = _swept(pyramid) - swept_before

            counters = pyramid.metrics.snapshot()["counters"]
            stops = {key[len("descent_stop_"):]: value
                     for key, value in sorted(counters.items())
                     if key.startswith("descent_stop_")}
            certified = counters.get("descent_certified", 0)

        # The certificate: exact optimum within (1 + gap) of every degraded
        # answer, the gap within the requested bound, and the bounded path
        # must prune strictly more points than the exact path swept.
        for spec, exact_r, approx_r in zip(fast_specs, exact_results,
                                           bounded_results):
            assert approx_r.gap is not None, spec
            assert approx_r.gap <= ERROR_BOUND + 1e-12, (spec, approx_r.gap)
            assert approx_r.total_weight <= exact_r.total_weight + 1e-9, spec
            assert exact_r.total_weight <= approx_r.total_weight \
                * (1.0 + approx_r.gap) + 1e-9, (spec, approx_r.gap)
        # The bounded path can never sweep more; when any query certified at
        # a coarse level it swept strictly fewer (at tiny presets the coarse
        # cells are too large relative to the query for a 5% certificate, so
        # every descent falls through to the exact sweep and the counts tie).
        assert bounded_swept <= exact_swept, (bounded_swept, exact_swept)
        if certified:
            assert bounded_swept < exact_swept, (bounded_swept, exact_swept)

        speedup = flat_seconds / pyramid_seconds if pyramid_seconds > 0 \
            else float("inf")
        per_dataset[name] = {
            "flat_seconds": flat_seconds,
            "pyramid_seconds": pyramid_seconds,
            "speedup": speedup,
            "exact_swept_points": exact_swept,
            "bounded_swept_points": bounded_swept,
            "pyramid_depth": grid_stats["pyramid_depth"],
            "levels": grid_stats["levels"],
            "descent_stops": stops,
            "certified": certified,
        }

    headline = per_dataset["uniform"]
    lines = [f"[service-pyramid] bounded-error descent (gap<={ERROR_BOUND}) "
             f"vs flat exact refined (|O|={cardinality}, "
             f"{len(fast_specs)} large cold queries):"]
    for name, entry in per_dataset.items():
        lines.append(
            f"  {name:8s}: flat {entry['flat_seconds']:8.3f} s | "
            f"pyramid {entry['pyramid_seconds']:8.3f} s "
            f"({entry['speedup']:5.2f}x), depth {entry['pyramid_depth']}, "
            f"swept {entry['bounded_swept_points']} vs "
            f"{entry['exact_swept_points']} points, "
            f"stops {entry['descent_stops']}")
    lines.append(
        f"  build overhead: pyramid {build_overhead:5.3f}x flat at "
        f"{reg_n} points (min-of-5)")
    lines.append("  exact answers bit-identical flat vs pyramid; every "
                 "degraded answer within its certified gap")
    report("\n".join(lines))
    write_bench_json(
        "pyramid",
        workload={"cardinality": cardinality,
                  "fast_queries": len(fast_specs),
                  "exact_queries": len(exact_specs),
                  "datasets": sorted(datasets)},
        config={"error_bound": ERROR_BOUND,
                "pyramid_depth": headline["pyramid_depth"],
                "registration_points": reg_n},
        seconds=headline["pyramid_seconds"],
        baseline_seconds=headline["flat_seconds"],
        speedup=headline["speedup"],
        extra={"per_dataset": per_dataset,
               "build_overhead_x": build_overhead})
    # Acceptance at (near-)paper scale: the descent must certify well before
    # the exact sweep finishes, and the roll-up must stay cheap.  Tiny
    # presets (where a handful of coarse cells make timings noise-bound)
    # record the numbers but only assert the correctness properties above.
    if cardinality >= 100_000:
        assert headline["certified"] == len(fast_specs), headline
        assert headline["bounded_swept_points"] \
            < headline["exact_swept_points"], headline
        assert headline["speedup"] >= 2.0, headline
        assert build_overhead <= 1.25, build_overhead


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start

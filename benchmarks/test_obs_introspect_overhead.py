"""Query-introspection overhead guard for the PR 10 cost-attribution work.

The introspection layer threads a per-query cost ledger through the compute
path (every counter the engine increments is double-booked into the active
query's :class:`~repro.service.metrics.QueryLedger`), attributes finished
queries to per-client ledgers, and can retain traces through the
:class:`~repro.obs.TailSamplingRecorder`.  As with tracing and fleet
telemetry before it, the bargain is that all of this must be *near-free* on
the serving hot path.  This benchmark times the sweep-dominated worst case
-- the refined cold query over a uniform 50k dataset -- in two variants:

* **baseline** -- the engine exactly as shipped: no tracer, anonymous
  queries (the ledger machinery exists but no client accounting happens
  beyond the per-query record every answer now carries);
* **fully enabled** -- the same engine with a tail-sampling tracer
  recording every query's span tree and every query attributed to a
  ``client_id``.

The variants are interleaved round-robin (so thermal drift and allocator
state hit both equally) and compared on their best-of-rounds.  Acceptance:
<= 3% added latency at (near-)paper scale; tiny presets answer the query
in milliseconds where timer jitter alone exceeds 3%, so there the guard
only sanity-checks the overhead is not grossly out of line.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro.geometry import WeightedPoint
from repro.obs import TailSamplingRecorder, Tracer
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the overhead workload.
PAPER_CARDINALITY = 50_000

#: Interleaved measurement rounds per variant (best-of wins).
ROUNDS = 5

_DOMAIN = 1_000_000.0


def _uniform_dataset(cardinality: int, seed: int = 23) -> list[WeightedPoint]:
    """Uniform points: the pruning worst case, i.e. the sweep-heaviest query."""
    rng = np.random.default_rng(seed)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.choice([1.0, 2.0, 3.0], cardinality))]


def _timed_cold_query(engine, dataset, spec, **kwargs) -> float:
    engine.clear_cache()
    start = time.perf_counter()
    engine.query(dataset, spec, **kwargs)
    return time.perf_counter() - start


def test_query_introspection_overhead(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _uniform_dataset(cardinality)
    spec = QuerySpec.maxrs(0.02 * _DOMAIN, 0.02 * _DOMAIN)

    baseline_engine = MaxRSEngine()  # no tracer, anonymous queries
    enabled_engine = MaxRSEngine(
        tracer=Tracer(TailSamplingRecorder(capacity=64,
                                           slow_threshold_s=0.0)))
    try:
        baseline_ds = baseline_engine.register_dataset(objects)
        enabled_ds = enabled_engine.register_dataset(objects)

        # Untimed warm-up round for each variant.
        _timed_cold_query(baseline_engine, baseline_ds, spec)
        _timed_cold_query(enabled_engine, enabled_ds, spec,
                          client_id="bench")

        baseline, enabled = [], []
        for _ in range(ROUNDS):
            baseline.append(
                _timed_cold_query(baseline_engine, baseline_ds, spec))
            enabled.append(
                _timed_cold_query(enabled_engine, enabled_ds, spec,
                                  client_id="bench"))

        best_baseline = min(baseline)
        best_enabled = min(enabled)
        overhead = best_enabled / best_baseline - 1.0

        # The enabled variant really was recording and attributing (else
        # the measurement is vacuous).
        recorder = enabled_engine.tracer.recorder
        assert recorder.stats()["kept"] >= ROUNDS
        ledgers = enabled_engine.client_ledgers()
        assert ledgers["bench"]["queries"] >= ROUNDS
        assert ledgers["bench"]["swept_points"] > 0

        # And the introspection changed nothing semantically.
        baseline_engine.clear_cache()
        enabled_engine.clear_cache()
        want = baseline_engine.query(baseline_ds, spec)
        got = enabled_engine.query(enabled_ds, spec, client_id="bench")
        assert got == want  # cost is excluded from equality by design
        assert got.cost["cache"] == "miss"
        assert got.cost["swept_points"] > 0
    finally:
        baseline_engine.close()
        enabled_engine.close()

    report(
        f"[obs-introspect-overhead] introspection enabled vs baseline, "
        f"refined cold query (|O|={cardinality}, {ROUNDS} interleaved "
        f"rounds, best-of):\n"
        f"  baseline (no tracer, anonymous)    : "
        f"{best_baseline * 1e3:9.3f} ms\n"
        f"  enabled (tail tracer + client ids) : "
        f"{best_enabled * 1e3:9.3f} ms\n"
        f"  overhead: {overhead:+.2%}  (bound: <= 3% at paper scale)"
    )
    write_bench_json(
        "introspect",
        workload={"cardinality": cardinality, "rounds": ROUNDS,
                  "width": spec.width, "height": spec.height},
        config={"recorder": "tail", "recorder_capacity": 64,
                "client_id": "bench"},
        seconds=best_enabled, baseline_seconds=best_baseline,
        speedup=best_baseline / best_enabled if best_enabled else None,
        extra={"overhead_fraction": overhead,
               "baseline_seconds_rounds": baseline,
               "enabled_seconds_rounds": enabled})

    if cardinality >= 20_000:
        assert overhead <= 0.03, (best_enabled, best_baseline)
    else:
        # Millisecond-scale queries: jitter dwarfs the introspection cost;
        # just catch something pathological (pickling every span tree or a
        # lock on the sweep inner loop would cost far more than 50%).
        assert overhead <= 0.50, (best_enabled, best_baseline)

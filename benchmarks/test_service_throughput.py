"""Serving throughput of the resident query engine (:mod:`repro.service`).

Two workloads establish the serving-performance trajectory that future
scaling PRs (sharded grids, async engine, persistence) are measured against:

* **Repeated-query speedup** -- the acceptance workload of the serving
  subsystem: 100 queries drawn from 20 distinct parameter sets over one
  dataset, answered end-to-end by the engine versus 100 fresh one-shot
  ``MaxRSSolver.solve`` calls.  The engine must win big *and* return
  bit-identical answers (weight and max-region) on every query.
* **Mixed 1000-query throughput** -- queries/second, cold cache vs. warm
  cache, over a mixed MaxRS / MaxkRS workload.
* **Sweep-backend comparison** -- the refined cold query (the engine's
  worst case: a near-uniform dataset barely prunes, so the exact sweep runs
  over the whole point set) timed per sweep backend, with bit-identical
  answers required across backends.  This is the trajectory the pluggable
  backend layer (:mod:`repro.core.backends`) is measured against.

The dataset is the serving-shaped synthetic workload: a uniform background
plus dense hot spots (real request traffic concentrates on hot spots; it is
also where grid pruning earns its keep).  The fresh-solver baseline is
measured once per distinct parameter set and extrapolated over the workload
multiplicities -- the solvers are deterministic, so this is exact up to
timer noise, and it keeps the benchmark runnable at paper scale.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro.api import MaxRSSolver
from repro.core.backends import available_backends
from repro.em import EMConfig
from repro.em.codecs import EVENT_CODEC
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the serving benchmark dataset.
PAPER_CARDINALITY = 50_000

#: The serving workloads: (total queries, distinct parameter sets).
ACCEPTANCE_QUERIES, ACCEPTANCE_DISTINCT = 100, 20
MIXED_QUERIES = 1_000

_DOMAIN = 1_000_000.0


def _hotspot_dataset(cardinality: int, seed: int = 7) -> list[WeightedPoint]:
    """Uniform background (90%) plus five dense hot spots (10%)."""
    rng = np.random.default_rng(seed)
    background = int(cardinality * 0.9)
    hot = cardinality - background
    xs = list(rng.uniform(0.0, _DOMAIN, background))
    ys = list(rng.uniform(0.0, _DOMAIN, background))
    centres = rng.uniform(0.2 * _DOMAIN, 0.8 * _DOMAIN, size=(5, 2))
    sigma = 0.005 * _DOMAIN
    for index in range(hot):
        cx, cy = centres[index % 5]
        xs.append(float(np.clip(rng.normal(cx, sigma), 0.0, _DOMAIN)))
        ys.append(float(np.clip(rng.normal(cy, sigma), 0.0, _DOMAIN)))
    weights = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(xs, ys, weights)]


def _distinct_sizes(count: int, seed: int = 3) -> list[tuple[float, float]]:
    """``count`` distinct rectangle sizes between 0.2% and 6% of the domain."""
    rng = np.random.default_rng(seed)
    sizes = []
    for _ in range(count):
        width = float(rng.uniform(0.002, 0.06) * _DOMAIN)
        height = float(rng.uniform(0.002, 0.06) * _DOMAIN)
        sizes.append((round(width, 1), round(height, 1)))
    return sizes


def _workload(sizes, total, seed: int = 11) -> list[tuple[float, float]]:
    """A query stream: every distinct size appears, popular ones repeat."""
    rng = np.random.default_rng(seed)
    stream = list(sizes)
    stream += [sizes[int(i)] for i in rng.integers(0, len(sizes),
                                                   total - len(sizes))]
    rng.shuffle(stream)
    return stream


def _in_memory_config(cardinality: int) -> EMConfig:
    """A buffer large enough that the one-shot solver runs in memory.

    This is the *fastest honest* fresh-solve baseline: with the default 1 MB
    buffer the one-shot solver would fall back to the external-memory
    algorithm for these cardinalities and lose by a far wider margin.
    """
    needed = 2 * cardinality * EVENT_CODEC.record_size
    return EMConfig(block_size=4096, buffer_size=max(2 * 4096, 2 * needed))


def test_repeated_query_speedup(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _hotspot_dataset(cardinality)
    sizes = _distinct_sizes(ACCEPTANCE_DISTINCT)
    workload = _workload(sizes, ACCEPTANCE_QUERIES)
    config = _in_memory_config(cardinality)

    # Baseline: fresh one-shot solves, measured once per distinct size and
    # extrapolated over the workload (the solver is deterministic).
    fresh_results = {}
    fresh_seconds = {}
    for width, height in sizes:
        start = time.perf_counter()
        fresh_results[(width, height)] = MaxRSSolver(
            width=width, height=height, config=config).solve(objects)
        fresh_seconds[(width, height)] = time.perf_counter() - start
    baseline_total = sum(fresh_seconds[size] for size in workload)

    # Engine: register once, answer the whole stream (cold cache).
    engine = MaxRSEngine()
    start = time.perf_counter()
    dataset = engine.register_dataset(objects)
    engine_results = [engine.query(dataset, QuerySpec.maxrs(w, h))
                      for w, h in workload]
    engine_total = time.perf_counter() - start

    # Exactness: bit-identical weight and max-region on every tested query.
    for size, result in zip(workload, engine_results):
        fresh = fresh_results[size]
        assert result.total_weight == fresh.total_weight, size
        assert result.region == fresh.region, size

    speedup = baseline_total / engine_total
    stats = engine.stats()
    report(
        f"[service-throughput] repeated-query workload "
        f"(|O|={cardinality}, {ACCEPTANCE_QUERIES} queries, "
        f"{ACCEPTANCE_DISTINCT} distinct):\n"
        f"  fresh MaxRSSolver.solve x{ACCEPTANCE_QUERIES} "
        f"(in-memory path, extrapolated): {baseline_total:8.2f} s\n"
        f"  MaxRSEngine end-to-end:                          "
        f"{engine_total:8.2f} s\n"
        f"  speedup: {speedup:6.1f}x   "
        f"cache hit rate: {stats['cache']['hit_rate']:.0%}\n"
        f"  answers: bit-identical on all {ACCEPTANCE_QUERIES} queries"
    )
    write_bench_json(
        "repeated_query",
        workload={"cardinality": cardinality,
                  "queries": ACCEPTANCE_QUERIES,
                  "distinct_sizes": ACCEPTANCE_DISTINCT},
        config={"engine": "MaxRSEngine", "cache": "default"},
        seconds=engine_total, baseline_seconds=baseline_total,
        speedup=speedup,
        latency=stats["latency"],
        extra={"cache_hit_rate": stats["cache"]["hit_rate"]})
    # Acceptance: >= 10x at (near-)paper scale; pruning matters less on tiny
    # datasets, so only sanity-check the win there.
    if cardinality >= 20_000:
        assert speedup >= 10.0, speedup
    else:
        assert speedup >= 2.0, speedup


def _uniform_dataset(cardinality: int, seed: int = 23) -> list[WeightedPoint]:
    """A uniform dataset: the engine's pruning worst case.

    Without hot spots the grid window bound is loose, the refine stage runs
    unpruned, and a refined cold query is dominated by one full plane sweep
    -- exactly the component the backend comparison wants to isolate.
    """
    rng = np.random.default_rng(seed)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.choice([1.0, 2.0, 3.0], cardinality))]


def test_backend_refined_cold_query(scale, report):
    """Sweep-backend A/B on the refined cold query; answers must agree."""
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _uniform_dataset(cardinality)
    spec = QuerySpec.maxrs(0.02 * _DOMAIN, 0.02 * _DOMAIN)

    seconds = {}
    answers = {}
    backends = available_backends()
    for name in backends:
        engine = MaxRSEngine(sweep_backend=name)
        handle = engine.register_dataset(objects)
        start = time.perf_counter()
        answers[name] = engine.query(handle, spec)
        seconds[name] = time.perf_counter() - start

    reference = answers[backends[0]]
    for name in backends[1:]:
        assert answers[name].total_weight == reference.total_weight, name
        assert answers[name].region == reference.region, name

    lines = [f"[service-throughput] sweep-backend comparison, refined cold "
             f"query (|O|={cardinality}, {spec.width:.0f} x {spec.height:.0f}):"]
    for name in backends:
        lines.append(f"  {name:<6}: {seconds[name]:8.3f} s")
    if "numpy" in seconds:
        speedup = seconds["pure"] / seconds["numpy"]
        lines.append(f"  numpy speedup over pure: {speedup:.1f}x")
    lines.append(f"  answers bit-identical across backends: yes")
    report("\n".join(lines))
    write_bench_json(
        "backend_refined_cold",
        workload={"cardinality": cardinality, "dataset": "uniform",
                  "width": spec.width, "height": spec.height},
        config={"backends": list(backends)},
        seconds=seconds.get("numpy", seconds[backends[0]]),
        baseline_seconds=seconds["pure"],
        speedup=(seconds["pure"] / seconds["numpy"]
                 if "numpy" in seconds else None),
        extra={"seconds_per_backend": seconds})

    # Acceptance: >= 5x at (near-)paper scale.  Tiny presets sweep so few
    # events that fixed vectorisation overhead dominates; there only the
    # bit-identity above is asserted.
    if "numpy" in seconds and cardinality >= 20_000:
        assert seconds["pure"] / seconds["numpy"] >= 5.0, seconds


def test_mixed_workload_throughput(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _hotspot_dataset(cardinality, seed=13)
    sizes = _distinct_sizes(18, seed=5)
    specs = [QuerySpec.maxrs(w, h) for w, h in _workload(sizes, MIXED_QUERIES - 40,
                                                         seed=17)]
    # Mix in MaxkRS requests (two distinct parameter sets, 40 queries).
    topk = [QuerySpec.maxkrs(8_000.0, 8_000.0, 3),
            QuerySpec.maxkrs(20_000.0, 5_000.0, 2)]
    specs += [topk[i % 2] for i in range(40)]

    engine = MaxRSEngine()
    dataset = engine.register_dataset(objects)

    start = time.perf_counter()
    cold = engine.query_batch(dataset, specs)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = engine.query_batch(dataset, specs)
    warm_seconds = time.perf_counter() - start

    assert len(cold) == len(warm) == MIXED_QUERIES
    for before, after in zip(cold, warm):
        assert after == before      # warm pass is pure cache
        first = after[0] if isinstance(after, tuple) else after
        assert first.cost is None or first.cost["cache"] == "hit"

    cold_qps = MIXED_QUERIES / cold_seconds
    warm_qps = MIXED_QUERIES / warm_seconds
    stats = engine.stats()
    report(
        f"[service-throughput] mixed workload "
        f"(|O|={cardinality}, {MIXED_QUERIES} queries, "
        f"{len(sizes)} rect sizes + {len(topk)} top-k):\n"
        f"  cold cache: {cold_seconds:8.3f} s  ({cold_qps:10.1f} queries/s)\n"
        f"  warm cache: {warm_seconds:8.3f} s  ({warm_qps:10.1f} queries/s)\n"
        f"  batch-deduplicated: {stats['counters'].get('batch_deduplicated', 0)}"
    )
    assert warm_seconds < cold_seconds
    assert warm_qps > 1_000.0

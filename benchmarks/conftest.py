"""Shared fixtures for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper (plus a
few ablations and substrate microbenchmarks).  The workload scale is
controlled by the ``REPRO_BENCH_PRESET`` environment variable:

* ``fast`` (default) -- a few thousand objects per run; the whole suite
  finishes in a few minutes and still shows the paper's qualitative shapes;
* ``bench`` -- the harness's standard scale (10% of the paper's
  cardinalities);
* ``smoke`` -- tiny; for checking the plumbing;
* ``paper`` -- the full-scale sweeps (hours in pure Python; run selectively).

Each figure benchmark prints the reproduced series (the same rows the paper
plots) so the captured benchmark output doubles as the measured side of
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

try:
    from repro.experiments.config import PRESETS, ExperimentScale
except ImportError:
    # The experiment harness (like every benchmark module) is numpy-backed.
    # Without numpy the whole directory is skipped at collection so
    # `make test` stays green on numpy-less hosts; any other import failure
    # is a real bug and must surface.
    try:
        import numpy  # noqa: F401
    except ImportError:
        collect_ignore_glob = ["test_*.py"]
        PRESETS = None
    else:
        raise

if PRESETS is not None:
    #: The default benchmark scale: small enough for minutes-long runs, large
    #: enough that ExactMaxRS still recurses and the baselines' curves
    #: separate.
    FAST_SCALE = ExperimentScale(
        cardinality_scale=0.02,
        buffer_scale=0.08,
        simulate_baselines=True,
        quality_cardinality_scale=0.008,
    )

    _PRESETS = dict(PRESETS)
    _PRESETS["fast"] = FAST_SCALE


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale selected via ``REPRO_BENCH_PRESET``."""
    name = os.environ.get("REPRO_BENCH_PRESET", "fast")
    try:
        return _PRESETS[name]
    except KeyError:  # pragma: no cover - defensive
        raise RuntimeError(
            f"unknown REPRO_BENCH_PRESET {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


@pytest.fixture(scope="session")
def report(request):
    """Print a reproduced artefact so it lands in the benchmark output.

    Output capturing is temporarily disabled so the reproduced tables and
    series appear in the terminal (and in any ``tee``'d benchmark log) even
    for passing tests; they are also appended to
    ``benchmarks/reproduced_artefacts.txt`` for later reference.

    Every recorded entry carries the process-default sweep-backend
    configuration (backend name plus numpy version, or "numpy absent"), so
    performance trajectories compared across PRs stay attributable to the
    sweep implementation that produced them.  Benchmarks that force a
    specific backend per measurement (the backend A/B comparison) name it in
    their own entry text.
    """
    from repro.core.backends import backend_summary

    capture_manager = request.config.pluginmanager.getplugin("capturemanager")
    results_path = os.path.join(os.path.dirname(__file__), "reproduced_artefacts.txt")
    backend_note = f"  [sweep-backend default: {backend_summary()}]"

    def _print(text: str) -> None:
        block = "\n" + text + "\n" + backend_note + "\n"
        if capture_manager is not None:
            with capture_manager.global_and_fixture_disabled():
                print(block)
        else:  # pragma: no cover - capture plugin always present under pytest
            print(block)
        with open(results_path, "a") as handle:
            handle.write(block)

    return _print

"""Table 2: cardinalities of the real datasets (and their stand-ins)."""

from _bench_utils import run_once

from repro.experiments import figures, reporting


def test_table2_real_dataset_cardinalities(benchmark, scale, report):
    table = run_once(benchmark, figures.table2, scale)
    report(reporting.format_table(table))
    assert [row[0] for row in table.rows] == ["UX", "NE"]
    # Paper cardinalities are reported verbatim; the stand-ins scale them.
    assert table.rows[0][1] == 19_499
    assert table.rows[1][1] == 123_593
    assert table.rows[1][2] > table.rows[0][2]

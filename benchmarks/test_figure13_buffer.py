"""Figure 13: I/O cost vs buffer size on the synthetic datasets.

Paper behaviour to reproduce: every algorithm benefits from a larger buffer
(never gets worse), ExactMaxRS remains the cheapest throughout, and its curve
flattens once the dataset-to-memory ratio stops shrinking the recursion.
"""

from _bench_utils import assert_exact_is_cheapest, assert_non_increasing, run_once, \
    series_values

from repro.experiments import figures, reporting


def test_figure13_effect_of_buffer_size(benchmark, scale, report):
    results = run_once(benchmark, figures.figure13, scale)
    assert len(results) == 2
    for figure in results:
        report(reporting.format_figure(figure))
        assert_exact_is_cheapest(figure)
        for algorithm in figure.series:
            # Allow some jitter between adjacent buffer sizes: runs can pick
            # slightly different slab boundaries and recursion shapes.
            assert_non_increasing(series_values(figure, algorithm), rel_slack=0.10)
        # Growing the buffer by 8x helps ExactMaxRS substantially.
        exact = series_values(figure, "ExactMaxRS")
        assert exact[-1] <= exact[0]

"""Figure 15: I/O cost vs buffer size on the real datasets (UX and NE).

Paper behaviour to reproduce: on the small, sparse UX dataset the curves
converge once the whole input fits in the buffer (the naive single scan
becomes competitive), while on the six-times-larger NE dataset ExactMaxRS
keeps a clear advantage across the whole buffer range.
"""

from _bench_utils import assert_non_increasing, run_once, series_values

from repro.experiments import figures, reporting


def test_figure15_effect_of_buffer_size_on_real_datasets(benchmark, scale, report):
    results = run_once(benchmark, figures.figure15, scale)
    assert len(results) == 2
    ux_figure, ne_figure = results
    for figure in results:
        report(reporting.format_figure(figure))
        for algorithm in figure.series:
            assert_non_increasing(series_values(figure, algorithm), rel_slack=0.10)

    # NE is the larger dataset, so every algorithm moves more blocks on it.
    for algorithm in ("Naive", "aSB-Tree", "ExactMaxRS"):
        assert max(series_values(ne_figure, algorithm)) > \
            max(series_values(ux_figure, algorithm))

    # On NE, ExactMaxRS stays the cheapest at every buffer size.
    for x in ne_figure.x_values():
        assert ne_figure.value_at("ExactMaxRS", x) <= ne_figure.value_at("Naive", x)
        assert ne_figure.value_at("ExactMaxRS", x) <= ne_figure.value_at("aSB-Tree", x)

    # On UX, the naive scan gets close to (or matches) the others once the
    # buffer is large: its worst-to-best improvement is substantial.
    naive_ux = series_values(ux_figure, "Naive")
    assert naive_ux[-1] <= naive_ux[0]

"""Figure 17: approximation quality of ApproxMaxCRS vs circle diameter.

Paper behaviour to reproduce: the measured ratio W(c_hat)/W(c*) is far above
the theoretical 1/4 guarantee (the paper reports an average close to 0.9) and
becomes higher and more stable as the diameter grows.
"""

import statistics

from _bench_utils import run_once

from repro.experiments import figures, reporting


def test_figure17_approximation_quality(benchmark, scale, report):
    figure = run_once(benchmark, figures.figure17, scale)
    report(reporting.format_figure(figure))

    assert set(figure.series) == {"Uniform", "Gaussian", "UX", "NE"}
    all_ratios = []
    for name, points in figure.series.items():
        ratios = [ratio for _, ratio in points]
        all_ratios.extend(ratios)
        # Theorem 3's guarantee holds everywhere.
        assert all(ratio >= 0.25 - 1e-9 for ratio in ratios), (name, ratios)
        assert all(ratio <= 1.0 + 1e-9 for ratio in ratios)

    # "The average approximation ratio is much larger than 1/4 in practice."
    # (The paper reports ~0.9 at 250k objects; scaled-down workloads cover
    # fewer objects per circle, which makes individual ratios noisier, so the
    # threshold here is deliberately conservative.)
    assert statistics.mean(all_ratios) >= 0.5

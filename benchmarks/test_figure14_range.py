"""Figure 14: I/O cost vs query range size on the synthetic datasets.

Paper behaviour to reproduce: the plane-sweep baselines get more expensive as
the range grows (more rectangle overlap means more interval work), while
ExactMaxRS is barely affected by the overlap probability.
"""

from _bench_utils import assert_exact_is_cheapest, run_once, series_values

from repro.experiments import figures, reporting


def test_figure14_effect_of_range_size(benchmark, scale, report):
    results = run_once(benchmark, figures.figure14, scale)
    assert len(results) == 2
    for figure in results:
        report(reporting.format_figure(figure))
        assert_exact_is_cheapest(figure)
        exact = series_values(figure, "ExactMaxRS")
        asb = series_values(figure, "aSB-Tree")
        # The aSB-tree's relative growth with the range size exceeds
        # ExactMaxRS's (whose cost is essentially flat in the range size).
        exact_growth = exact[-1] / exact[0]
        asb_growth = asb[-1] / asb[0]
        assert exact_growth <= asb_growth + 1e-9
        assert exact_growth < 2.0

"""Table 3: default parameter values of the empirical study."""

from _bench_utils import run_once

from repro.experiments import figures, reporting


def test_table3_default_parameters(benchmark, scale, report):
    table = run_once(benchmark, figures.table3, scale)
    report(reporting.format_table(table))
    parameters = {row[0]: row[1] for row in table.rows}
    assert parameters["Cardinality (|O|)"] == "250,000"
    assert parameters["Block size"] == "4KB"
    assert "256KB" in parameters["Buffer size"]
    assert "1024KB" in parameters["Buffer size"]
    assert parameters["Rectangle size (d1 x d2)"] == "1K x 1K"
    assert parameters["Circle diameter (d)"] == "1K"

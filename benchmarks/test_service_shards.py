"""Sharded vs unsharded grid index (:mod:`repro.service.sharding`).

The sharding acceptance workload at (near-)paper scale, 200k points: build
the pre-aggregation index and serve a set of refined cold queries, once with
the monolithic 1-shard serial baseline and once with 4 shards on the best
parallel executor the platform provides (the ``process`` data plane where
POSIX shared memory works, else ``threaded``).  Both engines must return
**bit-identical** refined answers (the module's merge-safety property); on a
multi-core host the sharded path must win by >= 2x on registration + refined
cold query combined.

The entry records the executor actually used, per-phase wall clock, the
shard point balance and the schedulable core count, so numbers appended to
``reproduced_artefacts.txt`` across machines stay interpretable -- on a
single-core host no executor can beat serial and only the bit-identity
assertions are meaningful.
"""

from __future__ import annotations

import os
import time

import pytest

np = pytest.importorskip("numpy")  # index construction is numpy-backed

from _bench_utils import write_bench_json
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec
from repro.service.grid_index import GridIndex
from repro.service.sharding import (
    ShardedGridIndex,
    available_executors,
    effective_cpu_count,
)

#: Paper-scale cardinality of the sharding benchmark dataset.
PAPER_CARDINALITY = 200_000

#: The acceptance configuration: 4 parallel shards vs 1-shard serial.
SHARDS = 4

#: The best parallel tier this platform provides (the multiprocess data
#: plane where shared memory works, else the GIL-bound threaded fan-out).
EXECUTOR = "process" if "process" in available_executors() else "threaded"

_DOMAIN = 1_000_000.0

#: The served working set: distinct refined rectangle queries (cold -- every
#: one runs the full approximate + pruned-refine pipeline).
_SIZES = [(20_000.0, 20_000.0), (10_000.0, 5_000.0), (8_000.0, 8_000.0),
          (30_000.0, 15_000.0), (5_000.0, 5_000.0), (12_000.0, 24_000.0)]


def _hotspot_columns(cardinality: int, seed: int = 37):
    """Uniform background (90%) plus five dense hot spots (10%), as columns."""
    rng = np.random.default_rng(seed)
    background = int(cardinality * 0.9)
    hot = cardinality - background
    centres = rng.uniform(0.2 * _DOMAIN, 0.8 * _DOMAIN, size=(5, 2))
    sigma = 0.005 * _DOMAIN
    picks = centres[np.arange(hot) % 5]
    xs = np.concatenate([
        rng.uniform(0.0, _DOMAIN, background),
        np.clip(rng.normal(picks[:, 0], sigma), 0.0, _DOMAIN)])
    ys = np.concatenate([
        rng.uniform(0.0, _DOMAIN, background),
        np.clip(rng.normal(picks[:, 1], sigma), 0.0, _DOMAIN)])
    ws = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return xs, ys, ws


def test_sharded_vs_unsharded(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    xs, ys, ws = _hotspot_columns(cardinality)
    objects = [WeightedPoint(float(x), float(y), float(w))
               for x, y, w in zip(xs, ys, ws)]
    specs = [QuerySpec.maxrs(w, h) for w, h in _SIZES]

    # Index registration: the pre-aggregation build over the raw columns.
    start = time.perf_counter()
    GridIndex(xs, ys, ws)
    mono_build = time.perf_counter() - start
    start = time.perf_counter()
    sharded_index = ShardedGridIndex(xs, ys, ws, shards=SHARDS,
                                     executor=EXECUTOR)
    shard_build = time.perf_counter() - start

    # Refined cold queries through the full engine pipeline.
    baseline = MaxRSEngine(shards=1, shard_executor="serial")
    handle = baseline.register_dataset(objects, name="bench")
    start = time.perf_counter()
    baseline_results = [baseline.query(handle, spec) for spec in specs]
    mono_query = time.perf_counter() - start

    with MaxRSEngine(shards=SHARDS, shard_executor=EXECUTOR) as engine:
        sharded_handle = engine.register_dataset(objects, name="bench")
        start = time.perf_counter()
        sharded_results = [engine.query(sharded_handle, spec)
                           for spec in specs]
        shard_query = time.perf_counter() - start
        grid_stats = engine.stats()["grids"]["bench"]

    # Exactness: the cross-shard merge must not change a single bit.
    for spec, mono_r, shard_r in zip(specs, baseline_results, sharded_results):
        assert shard_r.total_weight == mono_r.total_weight, spec
        assert shard_r.region == mono_r.region, spec
    assert grid_stats["shard_count"] == SHARDS
    # Record the executor the engine *actually* served on (it may have
    # degraded, e.g. when shared memory vanished at runtime).
    executor = grid_stats["executor"]
    assert executor == EXECUTOR

    cores = effective_cpu_count()
    mono_total = mono_build + mono_query
    shard_total = shard_build + shard_query
    speedup = mono_total / shard_total if shard_total > 0 else float("inf")
    balance = [entry["points"] for entry in grid_stats["shards"]]
    sharded_index.close()
    report(
        f"[service-shards] {SHARDS} {executor} shards vs 1-shard serial "
        f"(|O|={cardinality}, {len(specs)} refined cold queries, "
        f"{cores} core(s)):\n"
        f"  index build   : serial {mono_build:8.3f} s | "
        f"sharded {shard_build:8.3f} s "
        f"({mono_build / shard_build if shard_build > 0 else float('inf'):5.2f}x)\n"
        f"  refined cold  : serial {mono_query:8.3f} s | "
        f"sharded {shard_query:8.3f} s "
        f"({mono_query / shard_query if shard_query > 0 else float('inf'):5.2f}x)\n"
        f"  combined      : serial {mono_total:8.3f} s | "
        f"sharded {shard_total:8.3f} s ({speedup:5.2f}x)\n"
        f"  shard balance : {balance} points "
        f"({sharded_index.shard_count} shard(s))\n"
        f"  answers bit-identical across shard counts (merge safety holds)"
    )
    write_bench_json(
        "shards",
        workload={"cardinality": cardinality, "queries": len(specs)},
        config={"shards": SHARDS, "executor": executor, "cores": cores},
        seconds=shard_total, baseline_seconds=mono_total,
        speedup=speedup,
        extra={"build_seconds": {"serial": mono_build,
                                 "sharded": shard_build},
               "query_seconds": {"serial": mono_query,
                                 "sharded": shard_query},
               "shard_balance_points": balance})
    # Acceptance: >= 2x at (near-)paper scale on a host with enough cores to
    # actually run the shard fan-out in parallel.  Single-core hosts (or tiny
    # presets, where fixed fan-out overhead dominates) record the measured
    # numbers but only assert bit-identity above.
    if cardinality >= 100_000 and cores >= SHARDS:
        assert speedup >= 2.0, (mono_total, shard_total)

"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.results import FigureResult

__all__ = ["run_once", "series_values", "assert_exact_is_cheapest",
           "assert_non_increasing"]


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure reproductions are far too heavy for pytest-benchmark's usual
    auto-calibration (which would repeat them dozens of times); a single timed
    round is what we want -- the interesting measurement is the I/O count in
    the result, not nanosecond-level timing stability.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def series_values(figure: FigureResult, name: str) -> List[float]:
    """The y-values of one series in x order."""
    return [y for _, y in sorted(figure.series[name])]


def assert_exact_is_cheapest(figure: FigureResult) -> None:
    """ExactMaxRS must transfer the fewest blocks at every swept point."""
    for x in figure.x_values():
        exact = figure.value_at("ExactMaxRS", x)
        assert exact is not None
        for competitor in ("Naive", "aSB-Tree"):
            other = figure.value_at(competitor, x)
            assert other is None or exact <= other, (
                f"{figure.figure_id}: ExactMaxRS ({exact}) not cheapest "
                f"against {competitor} ({other}) at {figure.x_label}={x}"
            )


def assert_non_increasing(values: List[float], tolerance: float = 1e-9,
                          rel_slack: float = 0.0) -> None:
    """Assert a series never increases (e.g. I/O as the buffer grows).

    ``rel_slack`` tolerates small upward jitter (a few per cent) caused by
    boundary-selection differences between otherwise equivalent runs.
    """
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier * (1.0 + rel_slack) + tolerance, values


def weights_agree(figure: FigureResult) -> Dict[float, bool]:
    """Whether all algorithms reported the same optimum at each x."""
    from repro.experiments.sweeps import consistency_check

    return consistency_check(figure)

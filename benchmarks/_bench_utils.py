"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.results import FigureResult

__all__ = ["run_once", "series_values", "assert_exact_is_cheapest",
           "assert_non_increasing", "write_bench_json"]


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure reproductions are far too heavy for pytest-benchmark's usual
    auto-calibration (which would repeat them dozens of times); a single timed
    round is what we want -- the interesting measurement is the I/O count in
    the result, not nanosecond-level timing stability.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def series_values(figure: FigureResult, name: str) -> List[float]:
    """The y-values of one series in x order."""
    return [y for _, y in sorted(figure.series[name])]


def assert_exact_is_cheapest(figure: FigureResult) -> None:
    """ExactMaxRS must transfer the fewest blocks at every swept point."""
    for x in figure.x_values():
        exact = figure.value_at("ExactMaxRS", x)
        assert exact is not None
        for competitor in ("Naive", "aSB-Tree"):
            other = figure.value_at(competitor, x)
            assert other is None or exact <= other, (
                f"{figure.figure_id}: ExactMaxRS ({exact}) not cheapest "
                f"against {competitor} ({other}) at {figure.x_label}={x}"
            )


def assert_non_increasing(values: List[float], tolerance: float = 1e-9,
                          rel_slack: float = 0.0) -> None:
    """Assert a series never increases (e.g. I/O as the buffer grows).

    ``rel_slack`` tolerates small upward jitter (a few per cent) caused by
    boundary-selection differences between otherwise equivalent runs.
    """
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier * (1.0 + rel_slack) + tolerance, values


def weights_agree(figure: FigureResult) -> Dict[float, bool]:
    """Whether all algorithms reported the same optimum at each x."""
    from repro.experiments.sweeps import consistency_check

    return consistency_check(figure)


# ---------------------------------------------------------------------- #
# Machine-readable performance trajectory
# ---------------------------------------------------------------------- #
def _host_fingerprint() -> Dict[str, Any]:
    """What produced the numbers: platform, interpreter, cores, backend."""
    try:
        from repro.core.backends import backend_summary
        backend = backend_summary()
    except Exception:  # pragma: no cover - numpy-less host
        backend = "unavailable"
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy-less host
        numpy_version = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "sweep_backend": backend,
    }


def _exact_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """Exact p50/p95/p99 (linear interpolation) from raw second samples."""
    ordered = sorted(samples)

    def at(quantile: float) -> float:
        rank = quantile * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    return {
        "count": len(ordered),
        "mean_seconds": sum(ordered) / len(ordered),
        "min_seconds": ordered[0],
        "max_seconds": ordered[-1],
        "p50_seconds": at(0.50),
        "p95_seconds": at(0.95),
        "p99_seconds": at(0.99),
    }


def write_bench_json(name: str, *,
                     workload: Dict[str, Any],
                     config: Optional[Dict[str, Any]] = None,
                     seconds: Optional[float] = None,
                     baseline_seconds: Optional[float] = None,
                     speedup: Optional[float] = None,
                     samples: Optional[Sequence[float]] = None,
                     latency: Optional[Dict[str, Dict[str, float]]] = None,
                     extra: Optional[Dict[str, Any]] = None) -> str:
    """Write one ``BENCH_<name>.json`` artefact next to the benchmarks.

    This is the machine-readable half of the performance trajectory: where
    ``reproduced_artefacts.txt`` accumulates human-readable entries, each
    benchmark run *overwrites* its own JSON document so the checked-in
    artefact always describes the latest run on the latest code.  Every
    document carries a host fingerprint and the active preset, so numbers
    compared across PRs (or machines) stay attributable.

    Parameters
    ----------
    workload:
        What was measured (cardinality, query counts, mix name, ...).
    config:
        How the engine was configured (backend, shards, executor, ...).
    seconds, baseline_seconds, speedup:
        The headline measurement, its baseline, and their ratio.
    samples:
        Raw per-query second samples; exact p50/p95/p99 are derived.
    latency:
        Already-summarised histograms (e.g. ``engine.stats()["latency"]``)
        keyed by series name, used as-is when raw samples are not available.
    extra:
        Any benchmark-specific detail worth keeping (I/O counts, balance).

    Returns the path written.
    """
    document: Dict[str, Any] = {
        "schema": 1,
        "name": name,
        "written_unix": time.time(),
        "preset": os.environ.get("REPRO_BENCH_PRESET", "fast"),
        "host": _host_fingerprint(),
        "workload": dict(workload),
    }
    if config:
        document["config"] = dict(config)
    if seconds is not None:
        document["seconds"] = float(seconds)
    if baseline_seconds is not None:
        document["baseline_seconds"] = float(baseline_seconds)
    if speedup is not None:
        document["speedup"] = float(speedup)
    if samples:
        document["latency"] = {"samples": _exact_percentiles(samples)}
    elif latency:
        document["latency"] = {
            series: {key: summary[key] for key in
                     ("count", "mean_seconds", "p50_seconds", "p95_seconds",
                      "p99_seconds") if key in summary}
            for series, summary in latency.items()}
    if extra:
        document["extra"] = dict(extra)

    path = os.path.join(os.path.dirname(__file__), f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path

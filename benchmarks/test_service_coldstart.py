"""Warm-start vs cold re-ingest for the persistent engine (:mod:`repro.persist`).

The persistence acceptance workload: one 50k-point dataset is registered
with a persistent engine, served a small refined-query working set, and
checkpointed.  The benchmark then compares two ways of coming back from a
process restart:

* **cold re-ingest** -- a fresh memory-only engine re-registers the dataset
  (snapshot, fingerprint, grid build) and answers the working set with cold
  caches, re-running every pruned exact sweep;
* **warm start** -- ``MaxRSEngine(persist_dir=...)`` restores the snapshot
  catalog (columns, grid aggregates, hot results) and answers the same
  working set.

Both must return bit-identical refined answers; the warm start must win by
>= 5x at (near-)paper scale.  Snapshot traffic is charged through the EM
substrate, so the entry records the save and restore costs in **block
transfers** -- the paper's unit -- alongside the wall-clock numbers.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the persistence benchmark dataset.
PAPER_CARDINALITY = 50_000

_DOMAIN = 1_000_000.0

#: The served working set: a handful of distinct refined rectangle queries.
_SIZES = [(20_000.0, 20_000.0), (10_000.0, 5_000.0), (8_000.0, 8_000.0),
          (30_000.0, 15_000.0), (5_000.0, 5_000.0), (12_000.0, 24_000.0)]


def _hotspot_dataset(cardinality: int, seed: int = 19) -> list[WeightedPoint]:
    """Uniform background (90%) plus five dense hot spots (10%)."""
    rng = np.random.default_rng(seed)
    background = int(cardinality * 0.9)
    hot = cardinality - background
    xs = list(rng.uniform(0.0, _DOMAIN, background))
    ys = list(rng.uniform(0.0, _DOMAIN, background))
    centres = rng.uniform(0.2 * _DOMAIN, 0.8 * _DOMAIN, size=(5, 2))
    sigma = 0.005 * _DOMAIN
    for index in range(hot):
        cx, cy = centres[index % 5]
        xs.append(float(np.clip(rng.normal(cx, sigma), 0.0, _DOMAIN)))
        ys.append(float(np.clip(rng.normal(cy, sigma), 0.0, _DOMAIN)))
    weights = rng.choice([1.0, 2.0, 3.0], size=cardinality)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(xs, ys, weights)]


def test_coldstart_vs_warmstart(scale, report, tmp_path):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _hotspot_dataset(cardinality)
    specs = [QuerySpec.maxrs(w, h) for w, h in _SIZES]
    persist_dir = tmp_path / "snapshots"

    # Day 1: a persistent engine ingests, serves and checkpoints.
    day1 = MaxRSEngine(persist_dir=persist_dir)
    day1.register_dataset(objects, name="bench")
    day1_results = [day1.query("bench", spec) for spec in specs]
    day1.checkpoint()
    save_io = day1.stats()["persist"]["io"]

    # Restart, path A: cold re-ingest (no persistence to fall back on).
    start = time.perf_counter()
    cold = MaxRSEngine()
    handle = cold.register_dataset(objects, name="bench")
    cold_results = [cold.query(handle, spec) for spec in specs]
    cold_seconds = time.perf_counter() - start

    # Restart, path B: warm start from the snapshot directory.
    start = time.perf_counter()
    warm = MaxRSEngine(persist_dir=persist_dir)
    warm_results = [warm.query("bench", spec) for spec in specs]
    warm_seconds = time.perf_counter() - start
    warm_stats = warm.stats()["persist"]

    # Exactness: warm answers are bit-identical to both the cold recompute
    # and what the engine served before the restart.
    for spec, cold_r, warm_r, day1_r in zip(specs, cold_results,
                                            warm_results, day1_results):
        assert warm_r.total_weight == cold_r.total_weight, spec
        assert warm_r.region == cold_r.region, spec
        assert warm_r.total_weight == day1_r.total_weight, spec
        assert warm_r.region == day1_r.region, spec
    assert warm_stats["datasets_restored"] == 1
    assert warm_stats["restore_errors"] == {}
    assert warm_stats["io"]["block_reads"] > 0
    assert save_io["block_writes"] > 0

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    report(
        f"[service-coldstart] warm-start vs cold re-ingest "
        f"(|O|={cardinality}, {len(specs)} refined queries):\n"
        f"  cold re-ingest + cold solve : {cold_seconds:8.3f} s\n"
        f"  warm start from snapshots   : {warm_seconds:8.3f} s "
        f"({warm_stats['grids_restored']} grid(s), "
        f"{warm_stats['results_restored']} hot result(s) restored)\n"
        f"  speedup: {speedup:6.1f}x\n"
        f"  snapshot I/O: save {save_io['block_writes']} block writes, "
        f"restore {warm_stats['io']['block_reads']} block reads "
        f"(4 KB blocks, counted by em.counters)\n"
        f"  answers bit-identical to cold recompute and pre-restart serving"
    )
    write_bench_json(
        "coldstart",
        workload={"cardinality": cardinality, "queries": len(specs)},
        config={"persist": True, "block_size": 4096},
        seconds=warm_seconds, baseline_seconds=cold_seconds,
        speedup=speedup,
        latency=warm.stats()["latency"],
        extra={"save_block_writes": save_io["block_writes"],
               "restore_block_reads": warm_stats["io"]["block_reads"],
               "grids_restored": warm_stats["grids_restored"],
               "results_restored": warm_stats["results_restored"]})
    # Acceptance: >= 5x at (near-)paper scale.  Tiny presets register so
    # little data that fixed restore overhead dominates; there only the
    # bit-identity and accounting assertions above are meaningful.
    if cardinality >= 20_000:
        assert speedup >= 5.0, (cold_seconds, warm_seconds)

"""Disabled-tracing overhead guard for :mod:`repro.obs`.

The tracing subsystem's core bargain: with the default ``NullRecorder`` the
instrumentation sprinkled through the engine must be *near-free*.  Every
disabled ``obs.span(...)`` call is one ``ContextVar.get`` plus a ``None``
check returning a shared singleton; this benchmark pins that promise to a
number by timing the engine's sweep-dominated worst case -- the refined cold
query over a uniform 50k dataset (nothing prunes, the exact sweep runs over
the whole point set) -- in two variants:

* **disabled tracing** -- the engine exactly as shipped (NullRecorder);
* **no tracing** -- the same engine with ``repro.obs``'s ``span`` /
  ``Tracer.trace`` entry points replaced by stubs that return the no-op
  singleton without even touching the ``ContextVar``, approximating a build
  with the instrumentation compiled out.

The variants are interleaved round-robin (so thermal drift and allocator
state hit both equally) and compared on their best-of-rounds -- the standard
way to compare two codepaths under timer noise.  Acceptance: <= 3% added
latency at (near-)paper scale.  Tiny presets answer this query in
milliseconds, where timer jitter alone exceeds 3%; there the guard only
sanity-checks the overhead is not grossly out of line.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro import obs
from repro.geometry import WeightedPoint
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the overhead workload.
PAPER_CARDINALITY = 50_000

#: Interleaved measurement rounds per variant (best-of wins).
ROUNDS = 5

_DOMAIN = 1_000_000.0


def _uniform_dataset(cardinality: int, seed: int = 23) -> list[WeightedPoint]:
    """Uniform points: the pruning worst case, i.e. the sweep-heaviest query."""
    rng = np.random.default_rng(seed)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.choice([1.0, 2.0, 3.0], cardinality))]


def _noop_span(name, **attributes):
    return obs.NOOP_SPAN


def _noop_trace(self, name, *, trace_id=None, **attributes):
    return obs.NOOP_SPAN


class _PatchedOut:
    """Temporarily stub out the tracing entry points entirely.

    Instrumented modules resolve ``obs.span`` through the package attribute
    on every call and ``tracer.trace`` through the class, so swapping both
    here reaches every call site without reloading anything.
    """

    def __enter__(self):
        self._span = obs.span
        self._trace = obs.Tracer.trace
        obs.span = _noop_span
        obs.Tracer.trace = _noop_trace
        return self

    def __exit__(self, *exc_info):
        obs.span = self._span
        obs.Tracer.trace = self._trace
        return None


def _timed_cold_query(engine, dataset, spec) -> float:
    engine.clear_cache()
    start = time.perf_counter()
    engine.query(dataset, spec)
    return time.perf_counter() - start


def test_disabled_tracing_overhead(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _uniform_dataset(cardinality)
    spec = QuerySpec.maxrs(0.02 * _DOMAIN, 0.02 * _DOMAIN)

    engine = MaxRSEngine()  # default tracer: NullRecorder, i.e. disabled
    assert not engine.tracer.enabled
    dataset = engine.register_dataset(objects)

    _timed_cold_query(engine, dataset, spec)  # untimed warm-up round

    disabled, stripped = [], []
    for _ in range(ROUNDS):
        disabled.append(_timed_cold_query(engine, dataset, spec))
        with _PatchedOut():
            stripped.append(_timed_cold_query(engine, dataset, spec))

    best_disabled = min(disabled)
    best_stripped = min(stripped)
    overhead = best_disabled / best_stripped - 1.0

    report(
        f"[obs-overhead] disabled tracing vs no tracing, refined cold query "
        f"(|O|={cardinality}, {ROUNDS} interleaved rounds, best-of):\n"
        f"  no tracing (entry points stubbed): {best_stripped * 1e3:9.3f} ms\n"
        f"  disabled tracing (NullRecorder)  : {best_disabled * 1e3:9.3f} ms\n"
        f"  overhead: {overhead:+.2%}  (bound: <= 3% at paper scale)"
    )
    write_bench_json(
        "obs_overhead",
        workload={"cardinality": cardinality, "rounds": ROUNDS,
                  "width": spec.width, "height": spec.height},
        config={"recorder": "null"},
        seconds=best_disabled, baseline_seconds=best_stripped,
        speedup=best_stripped / best_disabled if best_disabled else None,
        extra={"overhead_fraction": overhead,
               "disabled_seconds": disabled,
               "stripped_seconds": stripped})

    # Also prove the stubbing changed nothing semantically: the answers of
    # both variants are the same object stream (cold solves, equal results).
    with _PatchedOut():
        engine.clear_cache()
        want = engine.query(dataset, spec)
    engine.clear_cache()
    got = engine.query(dataset, spec)
    assert got.total_weight == want.total_weight
    assert got.region == want.region

    if cardinality >= 20_000:
        assert overhead <= 0.03, (best_disabled, best_stripped)
    else:
        # Millisecond-scale queries: jitter dwarfs the handful of span
        # calls; just catch something pathological (an accidental always-on
        # trace path would cost far more than 50%).
        assert overhead <= 0.50, (best_disabled, best_stripped)

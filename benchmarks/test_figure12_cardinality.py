"""Figure 12: I/O cost vs dataset cardinality (Gaussian and uniform).

Paper behaviour to reproduce: ExactMaxRS transfers dramatically fewer blocks
than both plane-sweep baselines at every cardinality, its cost growing only
gently with the dataset, while the naive sweep's cost explodes quadratically.
"""

from _bench_utils import assert_exact_is_cheapest, run_once, series_values, weights_agree

from repro.experiments import figures, reporting


def test_figure12_effect_of_cardinality(benchmark, scale, report):
    results = run_once(benchmark, figures.figure12, scale)
    assert len(results) == 2
    for figure in results:
        report(reporting.format_figure(figure))
        assert_exact_is_cheapest(figure)
        # All three algorithms found the same optimum at every cardinality.
        assert all(weights_agree(figure).values())
        # The absolute gap between the naive sweep and ExactMaxRS widens as
        # the dataset grows (it reaches two orders of magnitude at the
        # paper's 250k-object scale).
        naive = series_values(figure, "Naive")
        exact = series_values(figure, "ExactMaxRS")
        assert naive[-1] - exact[-1] > naive[0] - exact[0]
        # At the largest cardinality the gap is clearly a multiple.
        assert naive[-1] >= 5 * exact[-1]

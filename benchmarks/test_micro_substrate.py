"""Microbenchmarks of the external-memory substrate and the in-memory sweep.

These use pytest-benchmark's normal calibration (they are cheap and
deterministic) and serve as regression guards for the building blocks whose
cost dominates every figure: sequential record file scans, the external merge
sort, and the in-memory plane sweep used at the base of the recursion.
"""

from repro.core import solve_in_memory
from repro.core.plane_sweep import sweep_events
from repro.core.transform import objects_to_event_records
from repro.datasets import generate_uniform
from repro.em import EMConfig, EMContext, OBJECT_CODEC, external_sort


def _context():
    return EMContext(EMConfig(block_size=4096, buffer_size=64 * 4096))


def test_micro_record_file_scan(benchmark):
    ctx = _context()
    objects = generate_uniform(20_000, seed=3, domain=1_000_000.0)
    file = ctx.create_file(OBJECT_CODEC)
    file.write_all((o.x, o.y, o.weight) for o in objects)

    def scan():
        ctx.clear_cache()
        return sum(1 for _ in file.reader())

    assert benchmark(scan) == 20_000


def test_micro_external_sort(benchmark):
    objects = generate_uniform(20_000, seed=5, domain=1_000_000.0)

    def sort_once():
        ctx = _context()
        file = ctx.create_file(OBJECT_CODEC)
        file.write_all((o.x, o.y, o.weight) for o in objects)
        result = external_sort(ctx, file, OBJECT_CODEC, key=lambda r: r[0])
        return len(result)

    assert benchmark(sort_once) == 20_000


def test_micro_plane_sweep(benchmark):
    objects = generate_uniform(5_000, seed=7, domain=100_000.0)
    records = objects_to_event_records(objects, 1_000.0, 1_000.0)

    def sweep():
        _, best = sweep_events(records)
        return best.weight

    assert benchmark(sweep) >= 1.0


def test_micro_solve_in_memory(benchmark):
    objects = generate_uniform(2_000, seed=9, domain=50_000.0)

    def solve():
        return solve_in_memory(objects, 1_000.0, 1_000.0).total_weight

    assert benchmark(solve) >= 1.0

"""Ablation: effect of the disk block size on all three MaxRS algorithms.

The paper fixes 4 KB blocks (Table 3).  This ablation varies the block size at
a fixed buffer size: larger blocks mean fewer, bigger transfers for the
sequential algorithms, so every algorithm's transferred-block count should
drop, with ExactMaxRS staying the cheapest throughout.
"""

from _bench_utils import run_once

from repro.datasets import DatasetSpec, Distribution, load_dataset
from repro.experiments.config import PaperDefaults
from repro.experiments.runner import run_maxrs

_DEFAULTS = PaperDefaults()
_BLOCK_SIZES = (2048, 4096, 8192)


def _run_block_size_sweep(scale):
    objects = load_dataset(DatasetSpec(Distribution.UNIFORM,
                                       scale.cardinality(_DEFAULTS.cardinality),
                                       seed=11))
    buffer_size = scale.buffer_size(_DEFAULTS.buffer_size_synthetic, 8192)
    table = {}
    for block_size in _BLOCK_SIZES:
        for algorithm in ("Naive", "aSB-Tree", "ExactMaxRS"):
            record = run_maxrs(
                algorithm, objects, dataset_name="uniform-ablation",
                width=_DEFAULTS.rectangle_size, height=_DEFAULTS.rectangle_size,
                block_size=block_size, buffer_size=buffer_size,
                simulate_baselines=scale.simulate_baselines)
            table[(block_size, algorithm)] = record.io_total
    return table


def test_ablation_block_size(benchmark, scale, report):
    table = run_once(benchmark, _run_block_size_sweep, scale)
    lines = ["Ablation: I/O cost vs disk block size (fixed buffer)",
             "----------------------------------------------------",
             f"{'block size':>10}  {'Naive':>12}  {'aSB-Tree':>12}  {'ExactMaxRS':>12}"]
    for block_size in _BLOCK_SIZES:
        lines.append(
            f"{block_size:>10}  {table[(block_size, 'Naive')]:>12,}  "
            f"{table[(block_size, 'aSB-Tree')]:>12,}  "
            f"{table[(block_size, 'ExactMaxRS')]:>12,}")
    report("\n".join(lines))

    for block_size in _BLOCK_SIZES:
        assert table[(block_size, "ExactMaxRS")] <= table[(block_size, "Naive")]
    # Bigger blocks never increase ExactMaxRS's transferred-block count.
    exact = [table[(b, "ExactMaxRS")] for b in _BLOCK_SIZES]
    assert exact[-1] <= exact[0]

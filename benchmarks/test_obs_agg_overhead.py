"""Fleet-telemetry overhead guard for :mod:`repro.obs.health`.

PR 8 threads metric aggregation through the query path (counter hooks on the
index build and sweep, SLO recording per query) and hangs a resource sampler
plus health monitor off every engine.  The bargain mirrors the tracing one
(`test_obs_overhead.py`): the telemetry must be *near-free* on the serving
hot path.  This benchmark times the engine's sweep-dominated worst case --
the refined cold query over a uniform 50k dataset -- in two variants:

* **baseline** -- the engine exactly as shipped: telemetry machinery
  present, resource sampler idle (it only runs at scrape time), no SLOs;
* **fully enabled** -- the same engine with a background resource sampler
  ticking every 50 ms and an :class:`~repro.obs.SLOTracker` with latency and
  availability objectives recording every query.

The variants are interleaved round-robin (so thermal drift and allocator
state hit both equally) and compared on their best-of-rounds.  Acceptance:
<= 3% added latency at (near-)paper scale; tiny presets answer the query in
milliseconds where timer jitter alone exceeds 3%, so there the guard only
sanity-checks the overhead is not grossly out of line.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")  # engine grid index and dataset generation

from _bench_utils import write_bench_json
from repro.geometry import WeightedPoint
from repro.obs import SLObjective
from repro.service import MaxRSEngine, QuerySpec

#: Paper-scale cardinality of the overhead workload.
PAPER_CARDINALITY = 50_000

#: Interleaved measurement rounds per variant (best-of wins).
ROUNDS = 5

#: Background resource-sampling cadence of the fully-enabled variant.
SAMPLE_INTERVAL_S = 0.05

_DOMAIN = 1_000_000.0


def _uniform_dataset(cardinality: int, seed: int = 23) -> list[WeightedPoint]:
    """Uniform points: the pruning worst case, i.e. the sweep-heaviest query."""
    rng = np.random.default_rng(seed)
    return [WeightedPoint(float(x), float(y), float(w))
            for x, y, w in zip(rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.uniform(0.0, _DOMAIN, cardinality),
                               rng.choice([1.0, 2.0, 3.0], cardinality))]


def _timed_cold_query(engine, dataset, spec) -> float:
    engine.clear_cache()
    start = time.perf_counter()
    engine.query(dataset, spec)
    return time.perf_counter() - start


def test_fleet_telemetry_overhead(scale, report):
    cardinality = scale.cardinality(PAPER_CARDINALITY)
    objects = _uniform_dataset(cardinality)
    spec = QuerySpec.maxrs(0.02 * _DOMAIN, 0.02 * _DOMAIN)

    baseline_engine = MaxRSEngine()  # sampler idle, no SLOs: the default
    enabled_engine = MaxRSEngine(
        sample_interval_s=SAMPLE_INTERVAL_S,
        slo=[SLObjective("availability", target=0.999),
             SLObjective("latency", target=0.99, latency_threshold_s=30.0)])
    try:
        baseline_ds = baseline_engine.register_dataset(objects)
        enabled_ds = enabled_engine.register_dataset(objects)

        # Untimed warm-up round for each variant.
        _timed_cold_query(baseline_engine, baseline_ds, spec)
        _timed_cold_query(enabled_engine, enabled_ds, spec)

        baseline, enabled = [], []
        for _ in range(ROUNDS):
            baseline.append(
                _timed_cold_query(baseline_engine, baseline_ds, spec))
            enabled.append(
                _timed_cold_query(enabled_engine, enabled_ds, spec))

        best_baseline = min(baseline)
        best_enabled = min(enabled)
        overhead = best_enabled / best_baseline - 1.0

        # The enabled variant really was sampling and tracking in the
        # background while the queries ran (else the measurement is vacuous).
        assert enabled_engine.sampler.samples > 0
        slo = enabled_engine.stats()["health"]["slo"]
        assert slo["availability"]["events"] >= ROUNDS
        assert not enabled_engine.slo.alerting()["availability"]

        # And the telemetry changed nothing semantically.
        baseline_engine.clear_cache()
        enabled_engine.clear_cache()
        want = baseline_engine.query(baseline_ds, spec)
        got = enabled_engine.query(enabled_ds, spec)
        assert got.total_weight == want.total_weight
        assert got.region == want.region
    finally:
        baseline_engine.close()
        enabled_engine.close()

    report(
        f"[obs-agg-overhead] fleet telemetry enabled vs baseline, refined "
        f"cold query (|O|={cardinality}, {ROUNDS} interleaved rounds, "
        f"best-of):\n"
        f"  baseline (sampler idle, no SLOs): {best_baseline * 1e3:9.3f} ms\n"
        f"  enabled ({SAMPLE_INTERVAL_S * 1e3:.0f} ms sampler + SLOs)  : "
        f"{best_enabled * 1e3:9.3f} ms\n"
        f"  overhead: {overhead:+.2%}  (bound: <= 3% at paper scale)"
    )
    write_bench_json(
        "obs_agg_overhead",
        workload={"cardinality": cardinality, "rounds": ROUNDS,
                  "width": spec.width, "height": spec.height},
        config={"sample_interval_s": SAMPLE_INTERVAL_S,
                "slo_objectives": 2},
        seconds=best_enabled, baseline_seconds=best_baseline,
        speedup=best_baseline / best_enabled if best_enabled else None,
        extra={"overhead_fraction": overhead,
               "baseline_seconds_rounds": baseline,
               "enabled_seconds_rounds": enabled})

    if cardinality >= 20_000:
        assert overhead <= 0.03, (best_enabled, best_baseline)
    else:
        # Millisecond-scale queries: jitter dwarfs the telemetry cost; just
        # catch something pathological (a per-query /proc walk or a lock on
        # the sweep inner loop would cost far more than 50%).
        assert overhead <= 0.50, (best_enabled, best_baseline)

"""Ablation: effect of the slab fan-out ``m`` on ExactMaxRS.

The paper fixes ``m = Θ(M/B)``.  This ablation sweeps smaller fan-outs on the
same workload and environment: with fewer slabs per division the recursion is
deeper and the algorithm pays more linear passes, so the I/O cost should fall
(or at least not rise) as the fan-out approaches the memory-derived value.
"""

from _bench_utils import assert_non_increasing, run_once

from repro.datasets import DatasetSpec, Distribution, dataset_to_em_file, load_dataset
from repro.core import ExactMaxRS
from repro.em import EMConfig, EMContext
from repro.experiments.config import PaperDefaults

_DEFAULTS = PaperDefaults()


def _run_with_fanouts(scale):
    objects = load_dataset(DatasetSpec(Distribution.UNIFORM,
                                       scale.cardinality(_DEFAULTS.cardinality),
                                       seed=7))
    buffer_size = scale.buffer_size(_DEFAULTS.buffer_size_synthetic,
                                    _DEFAULTS.block_size)
    results = {}
    for fanout in (2, 4, None):   # None = the Θ(M/B) default
        ctx = EMContext(EMConfig(block_size=_DEFAULTS.block_size,
                                 buffer_size=buffer_size))
        file = dataset_to_em_file(ctx, objects)
        ctx.reset_io()
        ctx.clear_cache()
        solver = ExactMaxRS(ctx, _DEFAULTS.rectangle_size, _DEFAULTS.rectangle_size,
                            fanout=fanout)
        result = solver.solve_objects_file(file)
        label = fanout if fanout is not None else solver.fanout
        results[label] = (result.io.total, result.recursion_levels,
                          result.total_weight)
    return results


def test_ablation_slab_fanout(benchmark, scale, report):
    results = run_once(benchmark, _run_with_fanouts, scale)
    lines = ["Ablation: ExactMaxRS I/O cost vs slab fan-out m",
             "-----------------------------------------------",
             f"{'fan-out':>8}  {'I/O cost':>10}  {'recursion levels':>17}"]
    for fanout in sorted(results):
        io_total, levels, _ = results[fanout]
        lines.append(f"{fanout:>8}  {io_total:>10,}  {levels:>17}")
    report("\n".join(lines))

    fanouts = sorted(results)
    costs = [results[f][0] for f in fanouts]
    levels = [results[f][1] for f in fanouts]
    weights = {round(results[f][2], 6) for f in fanouts}
    # The answer is independent of the fan-out.
    assert len(weights) == 1
    # Larger fan-out means shallower recursion and no more I/O.
    assert_non_increasing([float(v) for v in levels])
    assert_non_increasing([float(c) for c in costs], tolerance=0.05 * costs[0])

"""Figure 16: I/O cost vs query range size on the real datasets (UX and NE)."""

from _bench_utils import assert_exact_is_cheapest, run_once, series_values, weights_agree

from repro.experiments import figures, reporting


def test_figure16_effect_of_range_size_on_real_datasets(benchmark, scale, report):
    results = run_once(benchmark, figures.figure16, scale)
    assert len(results) == 2
    ux_figure, ne_figure = results
    for figure in results:
        report(reporting.format_figure(figure))
        # All algorithms agree on the optimum at every range size.
        assert all(weights_agree(figure).values())

    # On the larger NE dataset ExactMaxRS is the cheapest at every range size
    # and is barely affected by the growing overlap.
    assert_exact_is_cheapest(ne_figure)
    exact_ne = series_values(ne_figure, "ExactMaxRS")
    naive_ne = series_values(ne_figure, "Naive")
    assert exact_ne[-1] / exact_ne[0] < naive_ne[-1] / naive_ne[0] + 1e-9

    # NE costs dominate UX costs for every algorithm (bigger dataset).
    for algorithm in ("Naive", "aSB-Tree", "ExactMaxRS"):
        assert max(series_values(ne_figure, algorithm)) > \
            max(series_values(ux_figure, algorithm))

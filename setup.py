"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e .``) in fully offline
environments whose toolchain predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
